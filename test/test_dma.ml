(* Unit tests for the bus and the traditional DMA controller (paper
   section 2, Figure 1). *)

module Engine = Udma_sim.Engine
module Phys_mem = Udma_memory.Phys_mem
module Bus = Udma_dma.Bus
module Device = Udma_dma.Device
module Dma_engine = Udma_dma.Dma_engine

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let rig () =
  let mem = Phys_mem.create ~frames:8 ~page_size:4096 in
  let engine = Engine.create () in
  let bus = Bus.create mem in
  let dma = Dma_engine.create ~engine ~bus () in
  (engine, mem, bus, dma)

(* ---------- Bus ---------- *)

let test_bus_memory_routing () =
  let _, mem, bus, _ = rig () in
  Bus.store_word bus 64 0xCAFEl;
  Alcotest.check Alcotest.int32 "read via bus" 0xCAFEl (Bus.load_word bus 64);
  Alcotest.check Alcotest.int32 "read via memory" 0xCAFEl (Phys_mem.read_word mem 64)

let test_bus_io_routing () =
  let _, _, bus, _ = rig () in
  let stored = ref [] in
  let handler =
    Bus.
      {
        io_load = (fun ~paddr -> Int32.of_int (paddr land 0xff));
        io_store = (fun ~paddr v -> stored := (paddr, v) :: !stored);
      }
  in
  Bus.register_io bus ~base:0x100000 ~size:4096 handler;
  Bus.store_word bus 0x100010 7l;
  Alcotest.(check (list (pair int int32))) "store routed" [ (0x100010, 7l) ] !stored;
  Alcotest.check Alcotest.int32 "load routed" 0x10l (Bus.load_word bus 0x100010)

let test_bus_overlap_rejected () =
  let _, _, bus, _ = rig () in
  let h = Bus.{ io_load = (fun ~paddr:_ -> 0l); io_store = (fun ~paddr:_ _ -> ()) } in
  Bus.register_io bus ~base:0x100000 ~size:4096 h;
  checkb "overlap raises" true
    (try Bus.register_io bus ~base:0x100800 ~size:4096 h; false
     with Invalid_argument _ -> true);
  (* adjacent is fine *)
  Bus.register_io bus ~base:0x101000 ~size:4096 h

let test_bus_machine_check () =
  let _, _, bus, _ = rig () in
  checkb "unmapped load raises" true
    (try ignore (Bus.load_word bus 0x900000); false
     with Invalid_argument _ -> true)

let test_bus_timing () =
  let _, _, bus, _ = rig () in
  let t = Bus.timing bus in
  checki "burst: setup + words*cost"
    (t.Bus.burst_setup_cycles + (256 * t.Bus.burst_word_cycles))
    (Bus.dma_burst_cycles bus ~nbytes:1024);
  checki "burst rounds up words"
    (t.Bus.burst_setup_cycles + (2 * t.Bus.burst_word_cycles))
    (Bus.dma_burst_cycles bus ~nbytes:5);
  checki "pio: one transaction per word" (256 * t.Bus.single_word_cycles)
    (Bus.pio_cycles bus ~nbytes:1024)

(* ---------- Device ports ---------- *)

let test_device_buffer () =
  let port, store = Device.buffer "d" ~size:128 in
  port.Device.dev_write ~addr:8 (Bytes.of_string "hi");
  Alcotest.check Alcotest.string "stored" "hi"
    (Bytes.to_string (Bytes.sub store 8 2));
  Alcotest.check Alcotest.bytes "read" (Bytes.of_string "hi")
    (port.Device.dev_read ~addr:8 ~len:2);
  checkb "writable in range" true (port.Device.writable ~addr:0);
  checkb "not writable out of range" false (port.Device.writable ~addr:128)

let test_device_null () =
  let port = Device.null "sink" in
  port.Device.dev_write ~addr:0 (Bytes.make 16 'x');
  Alcotest.check Alcotest.bytes "reads zeros" (Bytes.make 4 '\000')
    (port.Device.dev_read ~addr:0 ~len:4);
  checki "free" 0 (port.Device.access_cycles ~addr:0 ~len:4096)

(* ---------- Dma_engine ---------- *)

let test_dma_mem_to_dev () =
  let engine, mem, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  Phys_mem.write_bytes mem ~addr:100 (Bytes.of_string "payload!");
  let done_at = ref (-1) in
  (match
     Dma_engine.start dma ~src:(Dma_engine.Mem 100)
       ~dst:(Dma_engine.Dev (port, 20)) ~nbytes:8
       ~on_complete:(fun () -> done_at := Engine.now engine)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "start failed: %a" Dma_engine.pp_error e);
  checkb "busy during transfer" true (Dma_engine.busy dma);
  checkb "data not yet moved" true (Bytes.get store 20 = '\000');
  Engine.run_until_idle engine;
  checkb "idle after" false (Dma_engine.busy dma);
  Alcotest.check Alcotest.string "moved" "payload!"
    (Bytes.to_string (Bytes.sub store 20 8));
  checkb "completion time positive" true (!done_at > 0)

let test_dma_dev_to_mem () =
  let engine, mem, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  Bytes.blit_string "incoming" 0 store 0 8;
  (match
     Dma_engine.start dma ~src:(Dma_engine.Dev (port, 0))
       ~dst:(Dma_engine.Mem 500) ~nbytes:8 ~on_complete:ignore
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "start failed: %a" Dma_engine.pp_error e);
  Engine.run_until_idle engine;
  Alcotest.check Alcotest.string "moved" "incoming"
    (Bytes.to_string (Phys_mem.read_bytes mem ~addr:500 ~len:8))

let test_dma_busy_rejected () =
  let _, _, _, dma = rig () in
  let port = Device.null "d" in
  ignore
    (Dma_engine.start dma ~src:(Dma_engine.Mem 0)
       ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:64 ~on_complete:ignore);
  checkb "second start refused" true
    (Dma_engine.start dma ~src:(Dma_engine.Mem 0)
       ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:64 ~on_complete:ignore
     = Error Dma_engine.Busy)

let test_dma_unsupported_pairs () =
  let _, _, _, dma = rig () in
  let port = Device.null "d" in
  checkb "mem to mem" true
    (Dma_engine.start dma ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Mem 64)
       ~nbytes:8 ~on_complete:ignore
     = Error Dma_engine.Unsupported_pair);
  checkb "dev to dev" true
    (Dma_engine.start dma
       ~src:(Dma_engine.Dev (port, 0))
       ~dst:(Dma_engine.Dev (port, 64))
       ~nbytes:8 ~on_complete:ignore
     = Error Dma_engine.Unsupported_pair)

let test_dma_bad_sizes () =
  let _, _, _, dma = rig () in
  let port = Device.null "d" in
  checkb "zero" true
    (Dma_engine.start dma ~src:(Dma_engine.Mem 0)
       ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:0 ~on_complete:ignore
     = Error Dma_engine.Bad_size);
  checkb "memory overrun" true
    (Dma_engine.start dma
       ~src:(Dma_engine.Mem (8 * 4096 - 4))
       ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:64 ~on_complete:ignore
     = Error Dma_engine.Bad_size)

let test_dma_device_refusal () =
  let _, _, _, dma = rig () in
  let port, _ = Device.buffer "d" ~size:64 in
  checkb "device refuses out-of-range dest" true
    (Dma_engine.start dma ~src:(Dma_engine.Mem 0)
       ~dst:(Dma_engine.Dev (port, 100))
       ~nbytes:8 ~on_complete:ignore
     = Error Dma_engine.Device_refused)

let test_dma_registers_and_remaining () =
  let engine, _, bus, dma = rig () in
  let port = Device.null "d" in
  ignore
    (Dma_engine.start dma ~src:(Dma_engine.Mem 4096)
       ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:1024 ~on_complete:ignore);
  checki "count register" 1024 (Dma_engine.count dma);
  Alcotest.(check (option int)) "memory-side base" (Some 4096)
    (Dma_engine.transfer_base dma);
  checki "remaining at start" 1024 (Dma_engine.remaining_bytes dma);
  let duration = Bus.dma_burst_cycles bus ~nbytes:1024 in
  Engine.advance engine (duration / 2);
  let rem = Dma_engine.remaining_bytes dma in
  checkb "about half remains" true (rem > 256 && rem < 768);
  checki "word multiple" 0 ((1024 - rem) land 3);
  Engine.run_until_idle engine;
  checki "zero when idle" 0 (Dma_engine.remaining_bytes dma);
  checki "count zero when idle" 0 (Dma_engine.count dma)

let test_dma_page_in_flight () =
  let engine, _, _, dma = rig () in
  let port = Device.null "d" in
  ignore
    (Dma_engine.start dma
       ~src:(Dma_engine.Mem (2 * 4096 + 2048))
       ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:4096 ~on_complete:ignore);
  checkb "first page busy" true (Dma_engine.mem_page_in_flight dma ~page_size:4096 2);
  checkb "straddled page busy" true
    (Dma_engine.mem_page_in_flight dma ~page_size:4096 3);
  checkb "other page free" false
    (Dma_engine.mem_page_in_flight dma ~page_size:4096 4);
  Engine.run_until_idle engine;
  checkb "free after" false (Dma_engine.mem_page_in_flight dma ~page_size:4096 2)

let test_dma_abort () =
  let engine, _, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  let completed = ref false in
  ignore
    (Dma_engine.start dma ~src:(Dma_engine.Mem 0)
       ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:64
       ~on_complete:(fun () -> completed := true));
  checkb "abort succeeds" true (Dma_engine.abort dma);
  checkb "idle immediately" false (Dma_engine.busy dma);
  Engine.run_until_idle engine;
  checkb "no completion callback" false !completed;
  checkb "no data moved" true (Bytes.get store 0 = '\000');
  checkb "abort when idle" false (Dma_engine.abort dma)

let test_dma_counters () =
  let engine, _, _, dma = rig () in
  let port = Device.null "d" in
  for _ = 1 to 3 do
    ignore
      (Dma_engine.start dma ~src:(Dma_engine.Mem 0)
         ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:100 ~on_complete:ignore);
    Engine.run_until_idle engine
  done;
  checki "transfers" 3 (Dma_engine.transfers_completed dma);
  checki "bytes" 300 (Dma_engine.bytes_moved dma)

let test_dma_device_latency_counts () =
  let engine, _, bus, dma = rig () in
  let slow =
    { (Device.null "slow") with Device.access_cycles = (fun ~addr:_ ~len:_ -> 5000) }
  in
  let t0 = Engine.now engine in
  ignore
    (Dma_engine.start dma ~src:(Dma_engine.Mem 0)
       ~dst:(Dma_engine.Dev (slow, 0)) ~nbytes:64 ~on_complete:ignore);
  Engine.run_until_idle engine;
  checki "device latency added"
    (Bus.dma_burst_cycles bus ~nbytes:64 + 5000)
    (Engine.now engine - t0)

let () =
  Alcotest.run "udma_dma"
    [
      ( "bus",
        [
          Alcotest.test_case "memory routing" `Quick test_bus_memory_routing;
          Alcotest.test_case "io routing" `Quick test_bus_io_routing;
          Alcotest.test_case "overlap rejected" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "machine check" `Quick test_bus_machine_check;
          Alcotest.test_case "timing" `Quick test_bus_timing;
        ] );
      ( "device",
        [
          Alcotest.test_case "buffer port" `Quick test_device_buffer;
          Alcotest.test_case "null port" `Quick test_device_null;
        ] );
      ( "dma_engine",
        [
          Alcotest.test_case "mem to dev" `Quick test_dma_mem_to_dev;
          Alcotest.test_case "dev to mem" `Quick test_dma_dev_to_mem;
          Alcotest.test_case "busy rejected" `Quick test_dma_busy_rejected;
          Alcotest.test_case "unsupported pairs" `Quick test_dma_unsupported_pairs;
          Alcotest.test_case "bad sizes" `Quick test_dma_bad_sizes;
          Alcotest.test_case "device refusal" `Quick test_dma_device_refusal;
          Alcotest.test_case "registers + remaining" `Quick
            test_dma_registers_and_remaining;
          Alcotest.test_case "page in flight" `Quick test_dma_page_in_flight;
          Alcotest.test_case "abort" `Quick test_dma_abort;
          Alcotest.test_case "counters" `Quick test_dma_counters;
          Alcotest.test_case "device latency" `Quick test_dma_device_latency_counts;
        ] );
    ]
