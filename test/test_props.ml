(* Property-based tests (qcheck) on core data structures and the
   paper's invariants, registered as alcotest cases. *)

module Eventq = Udma_sim.Eventq
module Rng = Udma_sim.Rng
module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Status = Udma.Status
module Sm = Udma.State_machine
module Initiator = Udma.Initiator
module M = Udma_os.Machine
module Vm = Udma_os.Vm
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Device = Udma_dma.Device
module Udma_engine = Udma.Udma_engine

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------- Eventq: pops are sorted, ties FIFO ---------- *)

let prop_eventq_sorted =
  qtest "eventq pops sorted, ties in insertion order"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Eventq.create () in
      List.iteri (fun i t -> Eventq.push q ~time:t i) times;
      let rec drain acc =
        match Eventq.pop q with
        | Some (t, i) -> drain ((t, i) :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      let rec sorted = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && i1 < i2)) && sorted rest
        | [ _ ] | [] -> true
      in
      List.length out = List.length times && sorted out)

(* ---------- Status: encode/decode is the identity ---------- *)

let status_gen =
  QCheck.(
    map
      (fun (a, b, c, (d, e, f, (err, rem))) ->
        Status.make ~started:a ~transferring:b ~invalid:c ~matches:d
          ~wrong_space:e ~queue_full:f ~device_error:err ~remaining_bytes:rem
          ())
      (quad bool bool bool
         (quad bool bool bool (pair (int_bound 15) (int_bound Status.max_remaining)))))

let prop_status_roundtrip =
  qtest "status encode/decode roundtrip" status_gen (fun s ->
      Status.equal s (Status.decode (Status.encode s)))

(* ---------- Layout: proxy is a bijection on memory ---------- *)

let prop_layout_proxy_bijection =
  qtest "PROXY is a bijection between memory and proxy space"
    QCheck.(int_bound ((64 * 4096) - 1))
    (fun addr ->
      let l = Layout.create ~page_size:4096 ~mem_pages:64 ~dev_pages:8 in
      let p = Layout.proxy_of l addr in
      Layout.region_of l p = Some Layout.Mem_proxy
      && Layout.unproxy l p = addr
      && Layout.offset_in_page l p = Layout.offset_in_page l addr)

(* ---------- State machine invariants ---------- *)

let event_gen =
  QCheck.(
    map
      (fun (k, proxy, value) ->
        let space = if proxy land 1 = 0 then Sm.Mem_space else Sm.Dev_space in
        match k mod 3 with
        | 0 -> Sm.Store { proxy; space; value }
        | 1 -> Sm.Load { proxy; space }
        | _ -> Sm.Done)
      (triple (int_bound 100) (int_bound 64) (int_range (-4) 100)))

(* Transferring is entered only through a Start action, and Start only
   happens on a Load whose space differs from the latched destination. *)
let prop_sm_transferring_only_via_start =
  qtest ~count:500 "Transferring entered only via Start"
    QCheck.(list event_gen)
    (fun events ->
      let ok = ref true in
      let state = ref Sm.Idle in
      List.iter
        (fun ev ->
          let prev = !state in
          let next, action = Sm.step prev ev in
          (match (prev, next) with
          | (Sm.Idle | Sm.Dest_loaded _), Sm.Transferring _ -> (
              match action with Sm.Start _ -> () | _ -> ok := false)
          | Sm.Transferring _, _ | _, (Sm.Idle | Sm.Dest_loaded _) -> ());
          (* a started transfer only leaves via Done *)
          (match (prev, ev, next) with
          | Sm.Transferring _, Sm.Done, Sm.Idle -> ()
          | Sm.Transferring _, Sm.Done, _ -> ok := false
          | Sm.Transferring t, _, next when next <> Sm.Transferring t ->
              ok := false
          | _ -> ());
          state := next)
        events;
      !ok)

(* After an Inval the machine is Idle unless it was Transferring. *)
let prop_sm_inval_resets =
  qtest ~count:500 "Inval resets any partial initiation"
    QCheck.(list event_gen)
    (fun events ->
      let state = ref Sm.Idle in
      List.iter (fun ev -> state := fst (Sm.step !state ev)) events;
      let before = !state in
      let after, _ =
        Sm.step before (Sm.Store { proxy = 0; space = Sm.Mem_space; value = -1 })
      in
      match before with
      | Sm.Transferring _ -> after = before (* never disturbed *)
      | Sm.Idle | Sm.Dest_loaded _ -> after = Sm.Idle)

(* ---------- Rng ---------- *)

let prop_rng_in_bounds =
  qtest "rng stays in bounds"
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* ---------- end-to-end: random transfers deliver exact bytes ---------- *)

let transfer_rig () =
  let config = { M.default_config with M.mem_pages = 64 } in
  let m = M.create ~config () in
  let udma = Option.get m.M.udma in
  let port, store = Device.buffer "d" ~size:(16 * 4096) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:16 ~port ();
  let proc = Scheduler.spawn m ~name:"p" in
  for i = 0 to 15 do
    match Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i ~writable:true with
    | Ok () -> ()
    | Error _ -> failwith "grant"
  done;
  (m, proc, store)

let prop_random_transfers_exact =
  qtest ~count:40 "random transfers deliver exact bytes"
    QCheck.(pair (int_range 1 12_000) (int_bound 1000))
    (fun (nbytes, seed) ->
      let m, proc, store = transfer_rig () in
      let buf = Kernel.alloc_buffer m proc ~bytes:16384 in
      let data = Bytes.init nbytes (fun i -> Char.chr ((i * 31 + seed) land 0xff)) in
      Kernel.write_user m proc ~vaddr:buf data;
      let cpu = Kernel.user_cpu m proc in
      match
        Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
          ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
          ~nbytes ()
      with
      | Ok _ ->
          Engine.run_until_idle m.M.engine;
          Bytes.sub store 0 nbytes = data
      | Error _ -> false)

(* offsets that straddle page boundaries on either side *)
let prop_unaligned_offsets_exact =
  qtest ~count:40 "transfers from odd offsets split correctly"
    QCheck.(pair (int_range 0 4092) (int_range 1 8000))
    (fun (off, nbytes) ->
      let off = off land lnot 3 in
      let m, proc, store = transfer_rig () in
      let buf = Kernel.alloc_buffer m proc ~bytes:16384 in
      let data = Bytes.init nbytes (fun i -> Char.chr ((i * 7) land 0xff)) in
      Kernel.write_user m proc ~vaddr:(buf + off) data;
      let cpu = Kernel.user_cpu m proc in
      match
        Initiator.transfer cpu ~layout:m.M.layout
          ~src:(Initiator.Memory (buf + off))
          ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:1 ~offset:0))
          ~nbytes ()
      with
      | Ok _ ->
          Engine.run_until_idle m.M.engine;
          Bytes.sub store 4096 nbytes = data
      | Error _ -> false)

(* ---------- paging: random overcommit never loses data ---------- *)

let prop_paging_preserves_data =
  qtest ~count:15 "random paging workload preserves data"
    QCheck.(pair (int_range 1 1000) (int_range 18 40))
    (fun (seed, buffers) ->
      let config = { M.default_config with M.mem_pages = 16 } in
      let m = M.create ~config () in
      let proc = Scheduler.spawn m ~name:"p" in
      let rng = Rng.create seed in
      let bufs =
        Array.init buffers (fun i ->
            let v = Kernel.alloc_buffer m proc ~bytes:4096 in
            Kernel.write_user m proc ~vaddr:v
              (Bytes.make 4096 (Char.chr ((i * 3) land 0xff)));
            (v, i))
      in
      (* random touch order, including rewrites *)
      let ok = ref true in
      for _ = 1 to 60 do
        let v, i = bufs.(Rng.int rng buffers) in
        if Rng.bool rng then
          Kernel.write_user m proc ~vaddr:v
            (Bytes.make 4096 (Char.chr ((i * 3) land 0xff)))
        else begin
          let got = Kernel.read_user m proc ~vaddr:v ~len:4096 in
          if got <> Bytes.make 4096 (Char.chr ((i * 3) land 0xff)) then
            ok := false
        end
      done;
      Array.iter
        (fun (v, i) ->
          let got = Kernel.read_user m proc ~vaddr:v ~len:4096 in
          if got <> Bytes.make 4096 (Char.chr ((i * 3) land 0xff)) then ok := false)
        bufs;
      !ok)

(* ---------- I1 under random preemption: correct and violation-free ---------- *)

let prop_i1_random_preemption =
  qtest ~count:10 "I1: random preemption never mis-pairs and data stays exact"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let m, proc, store = transfer_rig () in
      let p2 = Scheduler.spawn m ~name:"other" in
      ignore p2;
      let rng = Rng.create seed in
      Scheduler.set_preempt_hook m (Some (fun _ -> Rng.int rng 100 < 30));
      let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
      let data = Bytes.init 512 (fun i -> Char.chr ((i + seed) land 0xff)) in
      Kernel.write_user m proc ~vaddr:buf data;
      let cpu = Kernel.user_cpu m proc in
      let ok =
        match
          Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
            ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:2 ~offset:0))
            ~nbytes:512 ()
        with
        | Ok _ ->
            Engine.run_until_idle m.M.engine;
            Bytes.sub store (2 * 4096) 512 = data
        | Error _ -> false
      in
      Scheduler.set_preempt_hook m None;
      ok)

(* ---------- queued engine: random pieces, exact delivery ---------- *)

let queued_rig depth =
  let config =
    { M.default_config with
      M.mem_pages = 64;
      udma_mode = Some (Udma_engine.Queued { depth }) }
  in
  let m = M.create ~config () in
  let udma = Option.get m.M.udma in
  let port, store = Device.buffer "d" ~size:(16 * 4096) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:16 ~port ();
  let proc = Scheduler.spawn m ~name:"p" in
  for i = 0 to 15 do
    match Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i ~writable:true with
    | Ok () -> ()
    | Error _ -> failwith "grant"
  done;
  (m, udma, proc, store)

let prop_queued_random_exact =
  qtest ~count:30 "queued engine delivers random transfers exactly"
    QCheck.(triple (int_range 1 4) (int_range 1 12_000) (int_bound 1000))
    (fun (depth, nbytes, seed) ->
      let m, udma, proc, store = queued_rig depth in
      let buf = Kernel.alloc_buffer m proc ~bytes:16384 in
      let data =
        Bytes.init nbytes (fun i -> Char.chr ((i * 13 + seed) land 0xff))
      in
      Kernel.write_user m proc ~vaddr:buf data;
      let cpu = Kernel.user_cpu m proc in
      match
        Initiator.transfer_queued cpu ~layout:m.M.layout
          ~src:(Initiator.Memory buf)
          ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
          ~nbytes ()
      with
      | Ok _ ->
          Engine.run_until_idle m.M.engine;
          Bytes.sub store 0 nbytes = data
          && Udma_engine.outstanding udma = 0
          && Udma_engine.refcount udma
               ~frame:(Option.get (Vm.frame_of_vpn m proc ~vpn:(buf / 4096)))
             = 0
      | Error _ -> false)

(* ---------- queued refcounts drain to zero ---------- *)

(* Any mix of accepted and rejected initiations — valid pairs in both
   directions, wrong-space pairs the hardware refuses, half pairs the
   kernel invalidates — leaves every per-frame reference counter at
   zero once the engine drains (the I4 bookkeeping never leaks). *)
let prop_queued_refcounts_drain =
  qtest ~count:40 "queued per-frame refcounts return to zero after a drain"
    QCheck.(triple (int_range 1 4) (small_list (int_bound 99)) (int_bound 1000))
    (fun (depth, ops, salt) ->
      let m, udma, proc, _store = queued_rig depth in
      let buf = Kernel.alloc_buffer m proc ~bytes:(4 * 4096) in
      let cpu = Kernel.user_cpu m proc in
      let layout = m.M.layout in
      let mem_proxy i = Udma_mmu.Layout.proxy_of layout (buf + 4096 * (i mod 4)) in
      let dev i = Kernel.vdev_addr m ~index:(i mod 16) ~offset:0 in
      List.iteri
        (fun i op ->
          let nbytes = 4 * (1 + ((op * 37 + salt) mod 1024)) in
          match op mod 5 with
          | 0 ->
              (* mem -> dev raw pair *)
              cpu.Initiator.store ~vaddr:(dev i) (Int32.of_int nbytes);
              ignore (cpu.Initiator.load ~vaddr:(mem_proxy i))
          | 1 ->
              (* dev -> mem raw pair *)
              cpu.Initiator.store ~vaddr:(mem_proxy i) (Int32.of_int nbytes);
              ignore (cpu.Initiator.load ~vaddr:(dev i))
          | 2 ->
              (* wrong-space pair: refused with BadLoad *)
              cpu.Initiator.store ~vaddr:(mem_proxy i) (Int32.of_int nbytes);
              ignore (cpu.Initiator.load ~vaddr:(mem_proxy (i + 1)))
          | 3 ->
              (* half pair, then the kernel's I1 Inval *)
              cpu.Initiator.store ~vaddr:(dev i) (Int32.of_int nbytes);
              Udma_engine.invalidate udma
          | _ ->
              (* status probe *)
              ignore (cpu.Initiator.load ~vaddr:(dev i)))
        ops;
      Engine.run_until_idle m.M.engine;
      Udma_engine.outstanding udma = 0
      && Udma_engine.refcounts_snapshot udma = [])

(* ---------- Trace: ring wraparound keeps the newest records ---------- *)

let prop_trace_wraparound =
  qtest ~count:200 "trace at capacity keeps a suffix ending in the newest"
    QCheck.(pair (int_range 1 64) (int_bound 300))
    (fun (capacity, n) ->
      let module Event = Udma_obs.Event in
      let t = Udma_sim.Trace.create ~capacity ~enabled:true () in
      for i = 0 to n - 1 do
        Udma_sim.Trace.note t ~time:i Event.Sim (string_of_int i)
      done;
      let evs = Udma_sim.Trace.events t in
      let len = List.length evs in
      let is_seq i (ev : Event.t) =
        ev.Event.time = i && ev.Event.payload = Event.Note (string_of_int i)
      in
      (* the exact retained length depends on trim points; the contract
         is: bounded by capacity, a consecutive suffix, newest last *)
      len <= capacity
      && (n = 0 || len > 0)
      && (n = 0 || is_seq (n - 1) (List.nth evs (len - 1)))
      && (evs = []
         || fst
              (List.fold_left
                 (fun (ok, prev) (ev : Event.t) ->
                   ((ok && is_seq (prev + 1) ev), ev.Event.time))
                 (true, (List.hd evs).Event.time - 1)
                 evs)))

(* ---------- TLB: LRU eviction order matches a model ---------- *)

let prop_tlb_lru_model =
  qtest ~count:200 "TLB hits/misses match a reference LRU model"
    QCheck.(pair (int_range 1 8)
              (small_list (pair bool (int_bound 12))))
    (fun (capacity, ops) ->
      let tlb = Udma_mmu.Tlb.create ~capacity in
      (* model: vpns most-recently-used first *)
      let model = ref [] in
      List.for_all
        (fun (is_insert, vpn) ->
          if is_insert then begin
            let without = List.filter (( <> ) vpn) !model in
            let without =
              if List.length without >= capacity then
                (* drop the least recently used *)
                List.filteri (fun i _ -> i < capacity - 1) without
              else without
            in
            model := vpn :: without;
            Udma_mmu.Tlb.insert tlb vpn (Udma_mmu.Pte.make ~ppage:vpn ());
            true
          end
          else
            let model_hit = List.mem vpn !model in
            if model_hit then model := vpn :: List.filter (( <> ) vpn) !model;
            let tlb_hit = Udma_mmu.Tlb.lookup tlb vpn <> None in
            tlb_hit = model_hit)
        ops)

(* ---------- I3 policies agree on observable behaviour ---------- *)

let incoming_rig policy =
  let config =
    { M.default_config with M.mem_pages = 64; i3_policy = policy }
  in
  let m = M.create ~config () in
  let udma = Option.get m.M.udma in
  let port, store = Device.buffer "d" ~size:(16 * 4096) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:16 ~port ();
  let proc = Scheduler.spawn m ~name:"p" in
  (match Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true with
  | Ok () -> ()
  | Error _ -> failwith "grant");
  (m, proc, store)

let prop_i3_policies_equivalent_data =
  qtest ~count:20 "both I3 policies deliver identical incoming data"
    QCheck.(pair (int_range 4 4000) (int_bound 500))
    (fun (nbytes, seed) ->
      let nbytes = max 4 (nbytes land lnot 3) in
      let run policy =
        let m, proc, store = incoming_rig policy in
        Bytes.blit
          (Bytes.init nbytes (fun i -> Char.chr ((i + seed) land 0xff)))
          0 store 0 nbytes;
        let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
        let cpu = Kernel.user_cpu m proc in
        match
          Initiator.transfer cpu ~layout:m.M.layout
            ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
            ~dst:(Initiator.Memory buf) ~nbytes ()
        with
        | Ok _ ->
            Engine.run_until_idle m.M.engine;
            Some (Kernel.read_user m proc ~vaddr:buf ~len:nbytes)
        | Error _ -> None
      in
      match (run M.Write_upgrade, run M.Proxy_dirty_union) with
      | Some a, Some b ->
          a = b
          && a = Bytes.init nbytes (fun i -> Char.chr ((i + seed) land 0xff))
      | _ -> false)

(* ---------- router: per-path delivery is in order ---------- *)

module Packet = Udma_shrimp.Packet
module Router = Udma_shrimp.Router

let prop_router_in_order =
  qtest ~count:50 "router never reorders packets on one path"
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 1 2000))
    (fun sizes ->
      let engine = Engine.create () in
      let r = Router.create ~engine ~nodes:4 () in
      let got = ref [] in
      Router.register r ~node_id:3 (fun p -> got := p.Packet.seq :: !got);
      List.iteri
        (fun i size ->
          Router.send r
            { Packet.src_node = 0; dst_node = 3; dst_paddr = 0;
              payload = Bytes.make size 'x'; seq = i })
        sizes;
      Engine.run_until_idle engine;
      List.rev !got = List.init (List.length sizes) Fun.id)

(* The router.mli in-order guarantee under the per-link FIFO model:
   many flows with random sizes and injection times, interleaved over
   shared mesh links, must still deliver each (src,dst) flow's packets
   in sequence order. Under dimension-order the fixed path makes this
   structural; under minimal-adaptive the packets of one flow may take
   different paths and the per-(src,dst) arrival clamp is the whole
   guarantee — so the same property is checked for both policies. *)
let prop_router_in_order_contended_with ?(vc_count = 1) ?(rx_credits = None)
    ?(crossing = `Analytic) ?(flit_words = 1) routing name =
  qtest ~count:50 name
    QCheck.(pair (int_bound 100_000) (int_range 10 120))
    (fun (seed, npackets) ->
      let engine = Engine.create () in
      let nodes = 9 in
      let r =
        Router.create ~engine ~nodes
          ~config:
            { Router.default_config with
              Router.link_contention = true;
              Router.routing = routing;
              Router.vc_count;
              Router.rx_credits;
              Router.crossing;
              Router.flit_words }
          ()
      in
      let delivered = Hashtbl.create 32 in
      for d = 0 to nodes - 1 do
        Router.register r ~node_id:d (fun p ->
            let key = (p.Packet.src_node, d) in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt delivered key)
            in
            Hashtbl.replace delivered key (p.Packet.seq :: prev))
      done;
      let rng = Rng.create seed in
      let next_seq = Hashtbl.create 32 in
      let sent = Hashtbl.create 32 in
      for _ = 1 to npackets do
        let src = Rng.int rng nodes in
        let dst = (src + 1 + Rng.int rng (nodes - 1)) mod nodes in
        let key = (src, dst) in
        let seq = Option.value ~default:0 (Hashtbl.find_opt next_seq key) in
        Hashtbl.replace next_seq key (seq + 1);
        let size = 4 * (1 + Rng.int rng 500) in
        let time = Rng.int rng 2_000 in
        (* the in-order guarantee is per send-call order, so record the
           sequence as actually submitted at fire time *)
        Engine.schedule_at engine ~time (fun _ ->
            Hashtbl.replace sent key
              (seq :: Option.value ~default:[] (Hashtbl.find_opt sent key));
            Router.send r
              { Packet.src_node = src; dst_node = dst; dst_paddr = 0;
                payload = Bytes.make size 'x'; seq })
      done;
      Engine.run_until_idle engine;
      Hashtbl.fold
        (fun key sent_seqs ok ->
          ok && Hashtbl.find_opt delivered key = Some sent_seqs)
        sent true)

let prop_router_in_order_contended =
  prop_router_in_order_contended_with `Dimension_order
    "contended router keeps every (src,dst) flow in order"

let prop_router_in_order_adaptive =
  prop_router_in_order_contended_with `Minimal_adaptive
    "adaptive router keeps every (src,dst) flow in order"

(* Virtual channels let packets of different flows interleave on one
   wire (cross-VC backfill), and finite credits delay claims until a
   deposit slot frees — neither may break the per-flow clamp. *)
let prop_router_in_order_vcs =
  prop_router_in_order_contended_with ~vc_count:4 `Dimension_order
    "4-VC router keeps every (src,dst) flow in order"

let prop_router_in_order_vcs_credits =
  prop_router_in_order_contended_with ~vc_count:4 ~rx_credits:(Some 2)
    `Minimal_adaptive
    "4-VC credited adaptive router keeps every flow in order"

(* The flit crossing must honour the same delivery contract as the
   analytic wire: every (src,dst) flow in submit order, under VC
   interleaving and finite flit credits alike. The degenerate case —
   flit_words so large every packet is a single flit — is wormhole
   with nothing to pipeline, and pins the flit arbiter to the analytic
   one-packet-per-wire behaviour. *)
let prop_router_in_order_flit =
  prop_router_in_order_contended_with ~vc_count:2 ~rx_credits:(Some 2)
    ~crossing:`Flit `Dimension_order
    "flit crossing keeps every (src,dst) flow in order"

let prop_router_in_order_flit_degenerate =
  prop_router_in_order_contended_with ~crossing:`Flit ~flit_words:1024
    `Dimension_order
    "one-flit worms (degenerate flit mode) keep every flow in order"

(* ---------- router: credit conservation at every cycle ---------- *)

(* N1 as a property: under random traffic, random link faults (dead
   links exercise the NACK/retry grant path) and a mid-run credit
   squeeze, every (link, VC) pool satisfies
   [held + in_flight + free = capacity] at every observed cycle, and
   once the mesh drains every slot is free again. *)
let prop_router_credit_conservation =
  qtest ~count:40 "credits conserved every cycle under faults + squeeze"
    QCheck.(pair (int_bound 100_000) (triple (int_range 1 4) (int_range 1 4) bool))
    (fun (seed, (vcs, credits, adaptive)) ->
      let engine = Engine.create () in
      let nodes = 9 in
      let routing = if adaptive then `Minimal_adaptive else `Dimension_order in
      let r =
        Router.create ~engine ~nodes
          ~config:
            { Router.default_config with
              Router.link_contention = true;
              Router.routing = routing;
              Router.vc_count = vcs;
              Router.rx_credits = Some credits }
          ()
      in
      for d = 0 to nodes - 1 do
        Router.register r ~node_id:d (fun _ -> ())
      done;
      let neighbours = ref [] in
      for a = 0 to nodes - 1 do
        for b = 0 to nodes - 1 do
          if a <> b && Router.hops r ~src:a ~dst:b = 1 then
            neighbours := (a, b) :: !neighbours
        done
      done;
      let neighbours = Array.of_list !neighbours in
      let rng = Rng.create seed in
      let horizon = 4_000 in
      for _ = 1 to 40 do
        let src = Rng.int rng nodes in
        let dst = (src + 1 + Rng.int rng (nodes - 1)) mod nodes in
        let size = 4 * (1 + Rng.int rng 300) in
        let time = Rng.int rng horizon in
        Engine.schedule_at engine ~time (fun _ ->
            Router.send r
              { Packet.src_node = src; dst_node = dst; dst_paddr = 0;
                payload = Bytes.make size 'x'; seq = 0 })
      done;
      for _ = 1 to 6 do
        let from_node, to_node =
          neighbours.(Rng.int rng (Array.length neighbours))
        in
        let fault =
          if Rng.bool rng then Router.Link_dead
          else Router.Link_slow (1 + Rng.int rng 3)
        in
        let t_break = Rng.int rng horizon in
        Engine.schedule_at engine ~time:t_break (fun _ ->
            Router.set_link_fault r ~from_node ~to_node fault);
        Engine.schedule_at engine
          ~time:(t_break + 1 + Rng.int rng horizon)
          (fun _ -> Router.set_link_fault r ~from_node ~to_node Router.Link_ok)
      done;
      (* a mid-run squeeze and restore: conservation must survive the
         capacity resize itself *)
      let t_squeeze = Rng.int rng horizon in
      Engine.schedule_at engine ~time:t_squeeze (fun _ ->
          Router.set_rx_credits r (Some (1 + Rng.int rng 3)));
      Engine.schedule_at engine ~time:(t_squeeze + 1 + Rng.int rng horizon)
        (fun _ -> Router.set_rx_credits r (Some credits));
      let ok = ref true in
      let t = ref 0 in
      while !t < 6 * horizon do
        t := !t + 37;
        Engine.run_until engine !t;
        if Router.check_credits r <> None then ok := false
      done;
      Engine.run_until_idle engine;
      if Router.check_credits r <> None then ok := false;
      (* drained: nothing held, nothing in flight, every slot free *)
      List.iter
        (fun (c : Router.credit_stat) ->
          if
            c.Router.cr_held <> 0
            || c.Router.cr_inflight <> 0
            || c.Router.cr_free <> c.Router.cr_capacity
          then ok := false)
        (Router.credit_stats r);
      !ok)

(* ---------- router: flit-crossing pins ---------- *)

(* The analytic crossing must ignore the flit-only knobs: spelling out
   [`Analytic] and setting any [flit_words] takes the exact same code
   path, so arrivals are identical packet for packet. This is the pin
   that keeps every committed benchmark anchor byte-stable while the
   flit engine evolves. *)
let prop_analytic_ignores_flit_knobs =
  qtest ~count:30 "analytic arrivals identical under any flit_words"
    QCheck.(triple (int_bound 100_000) (int_range 10 60) (int_range 2 64))
    (fun (seed, npackets, flit_words) ->
      let run config =
        let engine = Engine.create () in
        let nodes = 9 in
        let r = Router.create ~engine ~nodes ~config () in
        let arrivals = ref [] in
        for d = 0 to nodes - 1 do
          Router.register r ~node_id:d (fun p ->
              arrivals :=
                (p.Packet.src_node, d, p.Packet.seq, Engine.now engine)
                :: !arrivals)
        done;
        let rng = Rng.create seed in
        for i = 1 to npackets do
          let src = Rng.int rng nodes in
          let dst = (src + 1 + Rng.int rng (nodes - 1)) mod nodes in
          let size = 4 * (1 + Rng.int rng 400) in
          let time = Rng.int rng 1_500 in
          Engine.schedule_at engine ~time (fun _ ->
              Router.send r
                { Packet.src_node = src; dst_node = dst; dst_paddr = 0;
                  payload = Bytes.make size 'x'; seq = i })
        done;
        Engine.run_until_idle engine;
        !arrivals
      in
      let base =
        { Router.default_config with
          Router.link_contention = true;
          Router.vc_count = 2;
          Router.rx_credits = Some 2 }
      in
      run base = run { base with Router.crossing = `Analytic; flit_words })

(* F1 as a property: under random flit traffic — random VC counts,
   credit depths and flit sizes — flit conservation holds at random
   mid-run probe points and at quiescence, where the mesh must also be
   fully drained (delivered = injected, nothing buffered, all credits
   back). Probes piggyback on engine events, so they always observe a
   flit-cycle boundary, where the identity is claimed to hold. *)
let prop_flit_conservation =
  qtest ~count:40 "flit conservation at random probes and quiescence"
    QCheck.(pair (int_bound 100_000)
              (triple (int_range 1 4) (int_range 0 4) (int_range 1 8)))
    (fun (seed, (vcs, credits, flit_words)) ->
      let engine = Engine.create () in
      let nodes = 9 in
      let r =
        Router.create ~engine ~nodes
          ~config:
            { Router.default_config with
              Router.link_contention = true;
              Router.crossing = `Flit;
              Router.vc_count = vcs;
              Router.rx_credits = (if credits = 0 then None else Some credits);
              Router.flit_words }
          ()
      in
      for d = 0 to nodes - 1 do
        Router.register r ~node_id:d (fun _ -> ())
      done;
      let rng = Rng.create seed in
      let ok = ref true in
      let probe _ = if Router.check_flits r <> None then ok := false in
      for i = 1 to 60 do
        let src = Rng.int rng nodes in
        let dst = (src + 1 + Rng.int rng (nodes - 1)) mod nodes in
        let size = 4 * (1 + Rng.int rng 300) in
        Engine.schedule_at engine ~time:(Rng.int rng 2_000) (fun _ ->
            Router.send r
              { Packet.src_node = src; dst_node = dst; dst_paddr = 0;
                payload = Bytes.make size 'x'; seq = i });
        Engine.schedule_at engine ~time:(Rng.int rng 8_000) probe
      done;
      Engine.run_until_idle engine;
      probe ();
      let injected, delivered, buffered = Router.flit_counts r in
      List.iter
        (fun (s : Router.flit_stat) ->
          if s.Router.fl_occ <> 0 || s.Router.fl_credits <> s.Router.fl_capacity
          then ok := false)
        (Router.flit_stats r);
      !ok && buffered = 0 && injected = delivered && injected > 0)

(* ---------- router: round-robin arbiter never starves ---------- *)

(* N2 as a property: against arbitrary competing ready sets, a VC that
   stays ready is granted within [vc_count] rounds when [rr] advances
   to just past each grant (the router's rule). Also: the arbiter only
   grants ready VCs and returns [None] exactly on an all-idle set. *)
let prop_arbiter_no_starvation =
  qtest ~count:300 "rr arbiter grants a persistent VC within vc_count rounds"
    QCheck.(triple (int_range 2 4) (int_bound 100_000) (int_range 1 60))
    (fun (n, seed, rounds) ->
      let rng = Rng.create seed in
      let target = Rng.int rng n in
      let rr = ref 0 in
      let streak = ref 0 in
      let ok = ref true in
      for _ = 1 to rounds do
        let ready = Array.init n (fun i -> i = target || Rng.bool rng) in
        (match Router.arbitrate ~rr:!rr ~ready with
        | None -> ok := false (* target was ready *)
        | Some g ->
            if not ready.(g) then ok := false;
            if g = target then streak := 0
            else begin
              incr streak;
              if !streak >= n then ok := false
            end;
            rr := (g + 1) mod n)
      done;
      !ok && Router.arbitrate ~rr:!rr ~ready:(Array.make n false) = None)

(* ---------- router: every produced path is a real mesh walk ---------- *)

(* The phantom-node regression, as a property: on every routable node
   count up to 64, for every (src,dst) and both policies (against
   randomly busied links, which is what steers adaptive), every hop is
   an in-range pair of mesh neighbours, the walk starts at src, ends
   at dst, and has exactly [hops] steps (minimal routing). *)
let prop_router_paths_valid =
  let valid_counts =
    List.filter Router.valid_nodes
      (List.init 63 (fun i -> i + 2) (* 2..64 *))
  in
  qtest ~count:60 "every path/route hop is one in-range mesh step"
    QCheck.(
      pair
        (oneofl ~print:string_of_int valid_counts)
        (pair (int_bound 100_000) (bool)))
    (fun (nodes, (seed, adaptive)) ->
      let engine = Engine.create () in
      let routing = if adaptive then `Minimal_adaptive else `Dimension_order in
      let r =
        Router.create ~engine ~nodes
          ~config:
            { Router.default_config with
              Router.link_contention = true;
              Router.routing = routing }
          ()
      in
      (* busy some links so adaptive has real choices to make *)
      (if adaptive then
         let rng = Rng.create seed in
         for d = 0 to nodes - 1 do
           Router.register r ~node_id:d (fun _ -> ())
         done;
         for _ = 1 to 1 + Rng.int rng 20 do
           let src = Rng.int rng nodes in
           let dst = (src + 1 + Rng.int rng (nodes - 1)) mod nodes in
           Router.send r
             { Packet.src_node = src; dst_node = dst; dst_paddr = 0;
               payload = Bytes.make (4 * (1 + Rng.int rng 500)) 'x'; seq = 0 }
         done);
      let in_range n = n >= 0 && n < nodes in
      let ok = ref true in
      for src = 0 to nodes - 1 do
        for dst = 0 to nodes - 1 do
          if src <> dst then
            List.iter
              (fun path ->
                let expected_len = Router.hops r ~src ~dst in
                ok :=
                  !ok
                  && List.length path = expected_len
                  && (match path with (a, _) :: _ -> a = src | [] -> false)
                  && (match List.rev path with
                     | (_, b) :: _ -> b = dst
                     | [] -> false)
                  && List.for_all
                       (fun (a, b) ->
                         in_range a && in_range b
                         && Router.hops r ~src:a ~dst:b = 1)
                       path
                  && (* consecutive hops chain *)
                  fst
                    (List.fold_left
                       (fun (chained, prev) (a, b) ->
                         (chained && (prev = None || prev = Some a), Some b))
                       (true, None) path))
              [ Router.path r ~src ~dst; Router.route r ~src ~dst ]
        done
      done;
      !ok)

(* ---------- automatic update: every write eventually visible ---------- *)

module System = Udma_shrimp.System
module Auto_update = Udma_shrimp.Auto_update

let prop_auto_update_complete =
  qtest ~count:15 "every snooped write is eventually visible remotely"
    QCheck.(pair (int_bound 1000) (int_range 1 40))
    (fun (seed, writes) ->
      let sys = System.create ~nodes:2 () in
      let snd = System.node sys 0 in
      let sp = Scheduler.spawn snd.System.machine ~name:"s" in
      let rp = Scheduler.spawn (System.node sys 1).System.machine ~name:"r" in
      let export = System.export_buffer sys ~node:1 ~proc:rp ~pages:1 in
      let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
      Kernel.write_user snd.System.machine sp ~vaddr:buf (Bytes.make 4096 '\000');
      System.auto_bind sys ~node:0 ~proc:sp ~vaddr:buf export;
      let rng = Rng.create seed in
      let cpu = Kernel.user_cpu snd.System.machine sp in
      let expected = Hashtbl.create 16 in
      for i = 1 to writes do
        let off = Rng.int rng 1024 * 4 in
        Hashtbl.replace expected off (Int32.of_int i);
        cpu.Initiator.store ~vaddr:(buf + off) (Int32.of_int i)
      done;
      System.run_until_idle sys;
      Hashtbl.fold
        (fun off v ok ->
          ok
          && Bytes.get_int32_le
               (Kernel.read_user (System.node sys 1).System.machine rp
                  ~vaddr:(export.System.vaddr + off) ~len:4)
               0
             = v)
        expected true)

(* ---------- I2/I3 as machine-wide predicates under random ops ---------- *)

module Page_table = Udma_mmu.Page_table
module Pte = Udma_mmu.Pte

(* I2: every present proxy mapping points at the proxy of the frame the
   real mapping currently holds. I3 (write-upgrade policy): a writable
   proxy page implies a dirty real page. Checked over every process
   after every operation of a random workload. *)
let invariants_hold m =
  let layout = m.M.layout in
  let first_proxy = M.proxy_vpn m 0 in
  let dev_base = Layout.page_of_addr layout (Layout.dev_proxy_base layout) in
  List.for_all
    (fun proc ->
      List.for_all
        (fun (vpn, (pte : Pte.t)) ->
          if (not pte.Pte.present) || vpn < first_proxy || vpn >= dev_base then
            true
          else begin
            let real_vpn = vpn - first_proxy in
            match Page_table.find proc.Udma_os.Proc.page_table real_vpn with
            | Some real when real.Pte.present ->
                let i2 = pte.Pte.ppage = M.proxy_ppage m real.Pte.ppage in
                let i3 =
                  match m.M.i3_policy with
                  | M.Write_upgrade -> (not pte.Pte.writable) || real.Pte.dirty
                  | M.Proxy_dirty_union -> true
                in
                i2 && i3
            | Some _ | None -> false (* proxy outlived its real mapping *)
          end)
        (Page_table.entries proc.Udma_os.Proc.page_table))
    m.M.procs

let prop_invariants_under_random_ops =
  let policies = [| M.Write_upgrade; M.Proxy_dirty_union |] in
  qtest ~count:25 "I2/I3 hold after every op of a random workload"
    QCheck.(pair (int_bound 10_000) (int_bound 1))
    (fun (seed, policy_idx) ->
      let config =
        { M.default_config with
          M.mem_pages = 20;
          i3_policy = policies.(policy_idx) }
      in
      let m = M.create ~config () in
      let udma = Option.get m.M.udma in
      let port, store = Device.buffer "d" ~size:(8 * 4096) in
      Bytes.fill store 0 (Bytes.length store) 'd';
      Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
      let proc = Scheduler.spawn m ~name:"p" in
      (match
         Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0
           ~writable:true
       with
      | Ok () -> ()
      | Error _ -> failwith "grant");
      let rng = Rng.create seed in
      let cpu = Kernel.user_cpu m proc in
      let bufs = ref [] in
      let pick_buf () =
        match !bufs with
        | [] -> None
        | l -> Some (List.nth l (Rng.int rng (List.length l)))
      in
      let ok = ref true in
      for _ = 1 to 60 do
        (match Rng.int rng 7 with
        | 0 ->
            (* allocate a fresh page *)
            if List.length !bufs < 24 then
              bufs := Kernel.alloc_buffer m proc ~bytes:4096 :: !bufs
        | 1 -> (
            (* dirty a page with a user write *)
            match pick_buf () with
            | Some b -> cpu.Initiator.store ~vaddr:b 7l
            | None -> ())
        | 2 -> (
            (* outgoing transfer: page as source *)
            match pick_buf () with
            | Some b -> (
                match
                  Initiator.transfer cpu ~layout:m.M.layout
                    ~src:(Initiator.Memory b)
                    ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
                    ~nbytes:256 ()
                with
                | Ok _ -> ()
                | Error _ -> ok := false)
            | None -> ())
        | 3 -> (
            (* incoming transfer: page as destination (I3 path) *)
            match pick_buf () with
            | Some b -> (
                match
                  Initiator.transfer cpu ~layout:m.M.layout
                    ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
                    ~dst:(Initiator.Memory b) ~nbytes:256 ()
                with
                | Ok _ -> ()
                | Error _ -> ok := false)
            | None -> ())
        | 4 -> (
            (* pageout daemon: clean a page *)
            match pick_buf () with
            | Some b -> ignore (Vm.clean_page m proc ~vpn:(b / 4096))
            | None -> ())
        | 5 ->
            (* memory pressure: force an eviction if possible *)
            (try ignore (Vm.evict_one m) with Vm.Out_of_memory -> ())
        | _ -> (
            (* read a page back (page-in path) *)
            match pick_buf () with
            | Some b -> ignore (Kernel.read_user m proc ~vaddr:b ~len:64)
            | None -> ()));
        Engine.run_until_idle m.M.engine;
        if not (invariants_hold m) then ok := false
      done;
      !ok)

(* ---------- protection backends: authorization at initiation time is
   terminal, and churn faults the next initiation deterministically.
   One parameterized generator drives all three backends. ---------- *)

module Backend = Udma_protect.Backend
module Tenants = Udma_protect.Tenants

let prop_backend_fault_determinism =
  qtest ~count:60
    "protection backends: initiation-time authorization terminal, churn \
     faults deterministic (proxy/iommu/capability)"
    QCheck.(
      triple (int_bound 2) (int_bound 100_000)
        (list_of_size (Gen.int_range 1 60) (int_bound 99)))
    (fun (k, seed, script) ->
      let kind = List.nth Backend.all_kinds k in
      let cfg =
        { Tenants.default_config with
          Tenants.kind; tenants = 6; slots = 4; seed }
      in
      let t = Tenants.create cfg in
      let rng = Rng.create (seed lxor 0x7e4a) in
      let ok = ref true in
      let tenant () = Rng.int rng 6 in
      (* random churn prefix: the property must hold from any state *)
      List.iter
        (fun op ->
          match op mod 6 with
          | 0 -> ignore (Tenants.attach t ~tenant:(tenant ()))
          | 1 -> ignore (Tenants.send t ~tenant:(tenant ()))
          | 2 -> Tenants.deschedule t ~tenant:(tenant ())
          | 3 -> ignore (Tenants.evict_slot t ~slot:(Rng.int rng 4))
          | 4 -> ignore (Tenants.revoke_tenant t ~tenant:(tenant ()))
          | _ ->
              (* a rogue probe is denied on every backend, every time *)
              if not (Tenants.rogue_probe t ~rogue:9999 ~slot:(Rng.int rng 4))
              then ok := false)
        script;
      (* the I5 oracle finds nothing on an unmutated backend *)
      if Backend.check (Tenants.backend t) <> None then ok := false;
      let x = tenant () in
      (* a descheduled tenant's next initiation faults Invalidated *)
      Tenants.deschedule t ~tenant:x;
      (match Tenants.initiate t ~tenant:x with
      | Error (Tenants.Invalidated, _) -> ()
      | Ok _ | Error _ -> ok := false);
      (* once granted, initiation succeeds — and an Ok is terminal:
         the transfer is done, nothing can fault it mid-flight *)
      ignore (Tenants.attach t ~tenant:x);
      (match Tenants.initiate t ~tenant:x with
      | Ok _ -> ()
      | Error _ -> ok := false);
      (* a revoked tenant's next initiation faults in the backend *)
      ignore (Tenants.revoke_tenant t ~tenant:x);
      (match Tenants.initiate t ~tenant:x with
      | Error (Tenants.Backend_fault _, _) -> ()
      | Ok _ | Error (Tenants.Invalidated, _) -> ok := false);
      (* an evicted tenant's next initiation faults in the backend *)
      ignore (Tenants.attach t ~tenant:x);
      (match Tenants.initiate t ~tenant:x with
      | Ok _ -> ()
      | Error _ -> ok := false);
      for slot = 0 to 3 do
        ignore (Tenants.evict_slot t ~slot)
      done;
      (match Tenants.initiate t ~tenant:x with
      | Error (Tenants.Backend_fault _, _) -> ()
      | Ok _ | Error (Tenants.Invalidated, _) -> ok := false);
      !ok)

let () =
  Alcotest.run "udma_props"
    [
      ( "structures",
        [
          prop_eventq_sorted;
          prop_status_roundtrip;
          prop_layout_proxy_bijection;
          prop_rng_in_bounds;
          prop_trace_wraparound;
          prop_tlb_lru_model;
          prop_arbiter_no_starvation;
        ] );
      ( "state-machine",
        [ prop_sm_transferring_only_via_start; prop_sm_inval_resets ] );
      ( "end-to-end",
        [
          prop_random_transfers_exact;
          prop_unaligned_offsets_exact;
          prop_paging_preserves_data;
          prop_i1_random_preemption;
          prop_queued_random_exact;
          prop_queued_refcounts_drain;
          prop_router_in_order;
          prop_router_in_order_contended;
          prop_router_in_order_adaptive;
          prop_router_in_order_vcs;
          prop_router_in_order_vcs_credits;
          prop_router_in_order_flit;
          prop_router_in_order_flit_degenerate;
          prop_analytic_ignores_flit_knobs;
          prop_flit_conservation;
          prop_router_credit_conservation;
          prop_router_paths_valid;
          prop_i3_policies_equivalent_data;
          prop_auto_update_complete;
          prop_invariants_under_random_ops;
          prop_backend_fault_determinism;
        ] );
    ]
