(* Unit tests for lib/traffic: arrival processes, spatial patterns,
   the load generator and the saturation sweep. Everything here must
   be deterministic under a fixed seed — the sweep determinism test is
   the same guarantee `shrimp_sim traffic --seed N` documents. *)

module Rng = Udma_sim.Rng
module Arrival = Udma_traffic.Arrival
module Pattern = Udma_traffic.Pattern
module Load_gen = Udma_traffic.Load_gen
module Sweep = Udma_traffic.Sweep
module Router = Udma_shrimp.Router

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- arrivals ---------- *)

let test_arrival_gaps () =
  let rng = Rng.create 1 in
  (* periodic: exact reciprocal of the rate *)
  for _ = 1 to 10 do
    checki "periodic gap" 250
      (Arrival.next_gap (Arrival.Periodic { per_kcycle = 4.0 }) rng)
  done;
  (* poisson: positive gaps, sample mean near 1000/rate *)
  let p = Arrival.Poisson { per_kcycle = 4.0 } in
  let n = 10_000 in
  let total = ref 0 in
  for _ = 1 to n do
    let g = Arrival.next_gap p rng in
    checkb "gap positive" true (g >= 1);
    total := !total + g
  done;
  let mean = float_of_int !total /. float_of_int n in
  checkb
    (Printf.sprintf "poisson mean %.1f within 10%% of 250" mean)
    true
    (mean > 225.0 && mean < 275.0);
  checkb "closed has no open-loop gap" true
    (try
       ignore
         (Arrival.next_gap (Arrival.Closed { clients = 2; think_cycles = 100 })
            rng);
       false
     with Invalid_argument _ -> true)

let test_arrival_deterministic () =
  let gaps seed =
    let rng = Rng.create seed in
    List.init 200 (fun _ ->
        Arrival.next_gap (Arrival.Poisson { per_kcycle = 2.0 }) rng)
  in
  checkb "same seed, same gaps" true (gaps 9 = gaps 9);
  checkb "different seed, different gaps" true (gaps 9 <> gaps 10)

(* ---------- patterns ---------- *)

let test_pattern_dest_in_support () =
  let rng = Rng.create 3 in
  let nodes = 12 and width = 4 in
  List.iter
    (fun pat ->
      for src = 0 to nodes - 1 do
        let support = Pattern.support pat ~width ~nodes ~src in
        for _ = 1 to 50 do
          match Pattern.dest pat rng ~width ~nodes ~src with
          | None ->
              checkb "silent source has empty support" true (support = [])
          | Some d ->
              checkb "never self" true (d <> src);
              checkb "dest within declared support" true (List.mem d support)
        done
      done)
    [ Pattern.Uniform; Pattern.Transpose; Pattern.Neighbor;
      Pattern.default_hotspot ]

let test_pattern_transpose () =
  let rng = Rng.create 4 in
  (* 3x3: (x,y) -> (y,x); the diagonal is silent *)
  checkb "diagonal silent" true
    (Pattern.dest Pattern.Transpose rng ~width:3 ~nodes:9 ~src:4 = None);
  checkb "corner swaps" true
    (Pattern.dest Pattern.Transpose rng ~width:3 ~nodes:9 ~src:1 = Some 3)

let test_pattern_hotspot () =
  let rng = Rng.create 5 in
  let pat = Pattern.Hotspot { node = 0; pct = 50 } in
  let hits = ref 0 and n = 2000 in
  for _ = 1 to n do
    match Pattern.dest pat rng ~width:4 ~nodes:16 ~src:5 with
    | Some 0 -> incr hits
    | Some _ -> ()
    | None -> Alcotest.fail "hotspot source silent"
  done;
  let frac = float_of_int !hits /. float_of_int n in
  (* 50% direct + uniform share of the rest *)
  checkb (Printf.sprintf "hotspot fraction %.2f" frac) true
    (frac > 0.45 && frac < 0.62)

let test_pattern_parse () =
  checkb "uniform" true (Pattern.parse "uniform" = Ok Pattern.Uniform);
  checkb "hotspot pct" true
    (Pattern.parse "hotspot:40" = Ok (Pattern.Hotspot { node = 0; pct = 40 }));
  checkb "junk rejected" true
    (match Pattern.parse "zipf" with Error _ -> true | Ok _ -> false)

(* ---------- load generator ---------- *)

let small_cfg =
  { Load_gen.default_config with
    Load_gen.nodes = 4;
    arrival = Arrival.Poisson { per_kcycle = 1.0 };
    msg_bytes = 128;
    warmup_cycles = 500;
    window_cycles = 5_000;
    seed = 7 }

let test_load_gen_smoke () =
  let r = Load_gen.run small_cfg in
  checki "nodes" 4 r.Load_gen.nodes;
  checki "width" 2 r.Load_gen.width;
  checkb "calibration found a positive cost" true (r.Load_gen.send_cycles > 0);
  checkb "traffic flowed" true (r.Load_gen.delivered > 0);
  checkb "no invention: delivered <= injected" true
    (r.Load_gen.delivered <= r.Load_gen.injected);
  checkb "latencies sorted" true
    (let l = r.Load_gen.latencies in
     Array.for_all Fun.id (Array.mapi (fun i v -> i = 0 || l.(i - 1) <= v) l));
  checkb "mean positive" true (r.Load_gen.mean_latency > 0.0);
  checkb "percentiles ordered" true
    (r.Load_gen.p50_latency <= r.Load_gen.p95_latency
    && r.Load_gen.p95_latency <= r.Load_gen.p99_latency
    && r.Load_gen.p99_latency <= r.Load_gen.max_latency)

let test_load_gen_deterministic () =
  let a = Load_gen.run small_cfg and b = Load_gen.run small_cfg in
  checkb "same seed, identical results" true (a = b);
  let c = Load_gen.run { small_cfg with Load_gen.seed = 8 } in
  checkb "different seed, different traffic" true
    (a.Load_gen.latencies <> c.Load_gen.latencies)

let test_load_gen_closed_loop () =
  let r =
    Load_gen.run
      { small_cfg with
        Load_gen.arrival = Arrival.Closed { clients = 8; think_cycles = 2_000 }
      }
  in
  checkb "closed-loop traffic flowed" true (r.Load_gen.delivered > 0)

let test_load_gen_contention_metrics () =
  (* drive a 4-node mesh hard enough that some link queues *)
  let r =
    Load_gen.run
      { small_cfg with
        Load_gen.arrival = Arrival.Poisson { per_kcycle = 3.0 } }
  in
  checkb "link stats present" true (r.Load_gen.links <> []);
  checkb "every link stat counts xmits" true
    (List.for_all (fun (l : Router.link_stat) -> l.Router.xmits >= 0)
       r.Load_gen.links)

let test_load_gen_validation () =
  let bad cfg = try ignore (Load_gen.run cfg); false
                with Invalid_argument _ -> true in
  checkb "1 node rejected" true (bad { small_cfg with Load_gen.nodes = 1 });
  (* partial-row counts would route through phantom nodes *)
  checkb "5 nodes rejected" true (bad { small_cfg with Load_gen.nodes = 5 });
  checkb "8 nodes rejected" true (bad { small_cfg with Load_gen.nodes = 8 });
  checkb "unaligned size rejected" true
    (bad { small_cfg with Load_gen.msg_bytes = 130 });
  checkb "oversized message rejected" true
    (bad { small_cfg with Load_gen.msg_bytes = 4096 });
  checkb "slow-link factor below 1 rejected" true
    (bad { small_cfg with Load_gen.link_per_word = 0 });
  checkb "0 VCs rejected" true (bad { small_cfg with Load_gen.vc_count = 0 });
  checkb "5 VCs rejected" true (bad { small_cfg with Load_gen.vc_count = 5 });
  checkb "0 rx credits rejected" true
    (bad { small_cfg with Load_gen.rx_credits = Some 0 })

let test_load_gen_vcs_deterministic () =
  let cfg =
    { small_cfg with
      Load_gen.arrival = Arrival.Poisson { per_kcycle = 3.0 };
      msg_bytes = 1024;
      link_per_word = 2;
      vc_count = 4;
      rx_credits = Some 4 }
  in
  let a = Load_gen.run cfg and b = Load_gen.run cfg in
  checkb "VC + credit run deterministic under seed" true (a = b);
  checkb "VC + credit traffic flowed" true (a.Load_gen.delivered > 0)

(* The tentpole's backpressure shape: a closed loop hammering a tight
   deposit FIFO must stall at the injection gate (credit_stalls > 0)
   instead of queueing without bound on the wire — the same offered
   load with unlimited credits piles deeper into the link FIFOs. *)
let test_load_gen_credit_stalls () =
  let base =
    { small_cfg with
      Load_gen.arrival = Arrival.Closed { clients = 12; think_cycles = 50 };
      msg_bytes = 1024;
      link_per_word = 8;
      window_cycles = 20_000 }
  in
  let credited =
    Load_gen.run { base with Load_gen.rx_credits = Some 1 }
  in
  let unlimited = Load_gen.run base in
  checkb "credited run delivered traffic" true
    (credited.Load_gen.delivered > 0);
  checkb "sources stalled at the injection gate" true
    (credited.Load_gen.credit_stalls > 0);
  checkb "stall cycles accumulated" true
    (credited.Load_gen.credit_stall_cycles > 0);
  checkb "unlimited credits never stall" true
    (unlimited.Load_gen.credit_stalls = 0);
  checkb "backpressure bounds the link FIFOs" true
    (credited.Load_gen.link_max_depth <= unlimited.Load_gen.link_max_depth)

(* ---------- sweep + knee ---------- *)

let mk_point ?(injected = 100) ?(delivered = 100) load mean =
  { Sweep.load;
    result =
      { Load_gen.nodes = 4; width = 2; send_cycles = 600;
        window_cycles = 10_000; injected; launched = delivered; delivered;
        offered_per_kcycle = 0.0; delivered_per_kcycle = 0.0;
        latencies = [||]; mean_latency = mean; p50_latency = 0;
        p95_latency = 0; p99_latency = 0; max_latency = 0;
        link_wait_cycles = 0; link_max_depth = 0; credit_stalls = 0;
        credit_stall_cycles = 0; links = []; flit_hol_cycles = 0;
        flit_occupancy = [||] } }

let test_knee_detection () =
  checkb "no knee on a flat curve" true
    (Sweep.detect_knee
       [ mk_point 0.2 100.0; mk_point 0.5 150.0; mk_point 0.8 190.0 ]
    = None);
  checkb "latency blow-up detected" true
    (Sweep.detect_knee
       [ mk_point 0.2 100.0; mk_point 0.5 150.0; mk_point 0.8 250.0 ]
    = Some 2);
  checkb "lost throughput detected" true
    (Sweep.detect_knee
       [ mk_point 0.2 100.0; mk_point 0.5 120.0;
         mk_point ~delivered:80 0.8 130.0 ]
    = Some 2);
  (* a saturated lightest point is the knee itself — its latency must
     not be trusted as the baseline for later points *)
  checkb "saturated point 0 is the knee" true
    (Sweep.detect_knee
       [ mk_point ~delivered:70 0.2 100.0; mk_point ~delivered:60 0.5 90.0 ]
    = Some 0);
  checkb "zero-delivery point 0 is the knee" true
    (Sweep.detect_knee [ mk_point ~delivered:0 0.2 0.0 ] = Some 0);
  (* ...but a healthy point 0 still anchors the latency baseline *)
  checkb "healthy point 0 is not a knee" true
    (Sweep.detect_knee
       [ mk_point 0.2 100.0; mk_point ~delivered:95 0.5 120.0 ]
    = None);
  checkb "empty curve" true (Sweep.detect_knee [] = None);
  (* regression: a non-monotone dip after a saturated point must not
     make the dip's rebound the knee — the knee is the first point of
     SUSTAINED saturation *)
  checkb "dip after a spike: knee is the sustained onset" true
    (Sweep.detect_knee
       [ mk_point 0.2 100.0; mk_point 0.4 250.0; mk_point 0.6 140.0;
         mk_point 0.8 320.0; mk_point 0.9 330.0 ]
    = Some 3);
  checkb "spike that recovers for good is no knee" true
    (Sweep.detect_knee
       [ mk_point 0.2 100.0; mk_point 0.4 250.0; mk_point 0.6 140.0;
         mk_point 0.8 150.0 ]
    = None)

let test_sweep_deterministic () =
  let run () =
    Sweep.run ~loads:[ 0.3; 1.2 ] ~nodes:4 ~msg_bytes:128 ~warmup_cycles:500
      ~window_cycles:4_000 ~seed:11 ()
  in
  let a = run () and b = run () in
  checkb "sweep identical under one seed" true (a = b);
  checki "one point per load" 2 (List.length a.Sweep.points);
  (match a.Sweep.knee_index with
  | Some i ->
      checkb "knee_load is the knee point's load" true
        (a.Sweep.knee_load = Some (List.nth a.Sweep.points i).Sweep.load)
  | None -> checkb "no knee, no load" true (a.Sweep.knee_load = None));
  checkb "monotone offered load" true
    (match a.Sweep.points with
    | [ p1; p2 ] ->
        p1.Sweep.result.Load_gen.injected
        < p2.Sweep.result.Load_gen.injected
    | _ -> false)

(* ---------- Shard_gen: the sharded engine's generator ---------- *)

module Shard_gen = Udma_traffic.Shard_gen

let shard_cfg ?(nodes = 64) ?(window = 8_000) () =
  {
    Load_gen.default_config with
    Load_gen.nodes;
    msg_bytes = 128;
    warmup_cycles = 1_000;
    window_cycles = window;
    arrival = Arrival.Poisson { per_kcycle = 4.0 };
    rx_credits = None;
    seed = 11;
  }

let test_shard_gen_domain_invariance () =
  let run domains = Shard_gen.run_stats ~domains (shard_cfg ()) in
  let r1, k1 = run 1 in
  checkb "traffic flows" true (r1.Load_gen.delivered > 0);
  List.iter
    (fun domains ->
      let r, k = run domains in
      checkb
        (Printf.sprintf "result identical at domains=%d" domains)
        true (r = r1);
      checkb
        (Printf.sprintf "kernel counters identical at domains=%d" domains)
        true (k = k1))
    [ 2; 3; 5 ]

let test_shard_gen_repeatable () =
  let a = Shard_gen.run (shard_cfg ()) in
  let b = Shard_gen.run (shard_cfg ()) in
  checkb "same config, same result" true (a = b);
  let c = Shard_gen.run { (shard_cfg ()) with Load_gen.seed = 12 } in
  checkb "seed matters" true (a <> c)

let test_shard_gen_large_mesh () =
  (* beyond the legacy 64-node cap: a short 1024-node (32x32) window *)
  let r, k =
    Shard_gen.run_stats ~domains:2 (shard_cfg ~nodes:1024 ~window:2_000 ())
  in
  checki "one shard per mesh row" 32 k.Shard_gen.shards;
  checkb "deliveries on the big mesh" true (r.Load_gen.delivered > 0);
  checkb "in-order per pair" true (r.Load_gen.injected >= r.Load_gen.delivered)

let test_shard_gen_validation () =
  let reject name cfg =
    match Shard_gen.run cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  reject "adaptive routing"
    { (shard_cfg ()) with Load_gen.routing = `Minimal_adaptive };
  reject "several VCs" { (shard_cfg ()) with Load_gen.vc_count = 2 };
  reject "finite credits" { (shard_cfg ()) with Load_gen.rx_credits = Some 4 };
  reject "closed loop"
    { (shard_cfg ()) with
      Load_gen.arrival = Arrival.Closed { clients = 2; think_cycles = 10 } };
  reject "oversized mesh" { (shard_cfg ()) with Load_gen.nodes = 2048 }

let test_sweep_dispatch () =
  checkb "small mesh, one domain: legacy" false
    (Sweep.use_sharded ~nodes:16 ~domains:1 ());
  checkb "small mesh, two domains: sharded" true
    (Sweep.use_sharded ~nodes:16 ~domains:2 ());
  checkb "large mesh always sharded" true
    (Sweep.use_sharded ~nodes:256 ~domains:1 ());
  checkb "flit crossing pins the legacy engine" false
    (Sweep.use_sharded ~crossing:`Flit ~nodes:16 ~domains:2 ());
  (* the sharded sweep is domain-count invariant end to end *)
  let sweep domains =
    Sweep.run ~loads:[ 0.3; 0.9 ] ~nodes:16 ~msg_bytes:128 ~warmup_cycles:500
      ~window_cycles:4_000 ~seed:11 ~domains ()
  in
  checkb "sweep identical at domains 2 and 3" true (sweep 2 = sweep 3)

let () =
  Alcotest.run "udma_traffic"
    [
      ( "arrival",
        [
          Alcotest.test_case "gap statistics" `Quick test_arrival_gaps;
          Alcotest.test_case "deterministic" `Quick test_arrival_deterministic;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "dest within support, never self" `Quick
            test_pattern_dest_in_support;
          Alcotest.test_case "transpose" `Quick test_pattern_transpose;
          Alcotest.test_case "hotspot bias" `Quick test_pattern_hotspot;
          Alcotest.test_case "parse" `Quick test_pattern_parse;
        ] );
      ( "load_gen",
        [
          Alcotest.test_case "smoke on a 2x2 mesh" `Quick test_load_gen_smoke;
          Alcotest.test_case "deterministic under seed" `Quick
            test_load_gen_deterministic;
          Alcotest.test_case "closed loop" `Quick test_load_gen_closed_loop;
          Alcotest.test_case "contention link stats" `Quick
            test_load_gen_contention_metrics;
          Alcotest.test_case "config validation" `Quick
            test_load_gen_validation;
          Alcotest.test_case "VCs + credits deterministic" `Quick
            test_load_gen_vcs_deterministic;
          Alcotest.test_case "credit backpressure stalls sources" `Quick
            test_load_gen_credit_stalls;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "knee detection rules" `Quick test_knee_detection;
          Alcotest.test_case "deterministic, consistent knee" `Quick
            test_sweep_deterministic;
          Alcotest.test_case "engine dispatch + sharded sweep" `Quick
            test_sweep_dispatch;
        ] );
      ( "shard_gen",
        [
          Alcotest.test_case "domain-count invariance" `Quick
            test_shard_gen_domain_invariance;
          Alcotest.test_case "repeatable under seed" `Quick
            test_shard_gen_repeatable;
          Alcotest.test_case "1024-node mesh" `Quick test_shard_gen_large_mesh;
          Alcotest.test_case "config validation" `Quick
            test_shard_gen_validation;
        ] );
    ]
