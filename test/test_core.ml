(* Unit tests for the UDMA core: the status word, the hardware state
   machine of Figure 5 (tested exhaustively), and the engine at the
   physical-bus level, with no OS in the way. *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Phys_mem = Udma_memory.Phys_mem
module Bus = Udma_dma.Bus
module Device = Udma_dma.Device
module Dma_engine = Udma_dma.Dma_engine
module Status = Udma.Status
module Sm = Udma.State_machine
module Udma_engine = Udma.Udma_engine

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let status_t = Alcotest.testable Status.pp Status.equal

(* ---------- Status ---------- *)

let test_status_encode_decode () =
  let s =
    Status.make ~started:true ~transferring:true ~matches:true
      ~remaining_bytes:12345 ~device_error:5 ()
  in
  Alcotest.check status_t "roundtrip" s (Status.decode (Status.encode s));
  Alcotest.check status_t "idle roundtrip" Status.idle
    (Status.decode (Status.encode Status.idle))

let test_status_initiation_flag_polarity () =
  (* the paper's INITIATION FLAG is zero when the access started a
     transfer *)
  let started = Status.make ~started:true () in
  checki "bit0 clear when started" 0
    (Int32.to_int (Status.encode started) land 1);
  checki "bit0 set when not" 1 (Int32.to_int (Status.encode Status.idle) land 1)

let test_status_remaining_saturates () =
  let s = Status.make ~remaining_bytes:Status.max_remaining () in
  checki "max representable" Status.max_remaining
    (Status.decode (Status.encode s)).Status.remaining_bytes

let test_status_predicates () =
  checkb "ok" true (Status.ok (Status.make ~started:true ()));
  checkb "not ok with device error" false
    (Status.ok (Status.make ~started:true ~device_error:1 ()));
  checkb "hard error on wrong space" true
    (Status.hard_error (Status.make ~wrong_space:true ()));
  checkb "busy is not a hard error" false
    (Status.hard_error (Status.make ~transferring:true ()))

let test_status_validation () =
  checkb "device_error range" true
    (try ignore (Status.make ~device_error:16 ()); false
     with Invalid_argument _ -> true);
  checkb "negative remaining" true
    (try ignore (Status.make ~remaining_bytes:(-1) ()); false
     with Invalid_argument _ -> true)

(* ---------- State machine: exhaustive Figure 5 ---------- *)

let dest =
  Sm.{ dest_proxy = 0x1000; dest_space = Dev_space; nbytes = 64; shape = Flat }
let dest2 =
  Sm.{ dest_proxy = 0x2000; dest_space = Dev_space; nbytes = 128; shape = Flat }

let transferring =
  Sm.Transferring { src_proxy = 0x9000; src_space = Sm.Mem_space; dest }

let sm_t = Alcotest.testable Sm.pp_state (fun a b -> a = b)
let action_t = Alcotest.testable Sm.pp_action (fun a b -> a = b)

let test_sm_store_from_idle () =
  let s, a =
    Sm.step Sm.Idle (Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = 64 })
  in
  Alcotest.check sm_t "latches" (Sm.Dest_loaded dest) s;
  Alcotest.check action_t "action" Sm.Latch_dest a

let test_sm_inval_from_idle () =
  let s, a =
    Sm.step Sm.Idle (Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = -1 })
  in
  Alcotest.check sm_t "stays idle" Sm.Idle s;
  Alcotest.check action_t "inval" Sm.Invalidated a

let test_sm_zero_count_is_inval () =
  let _, a =
    Sm.step Sm.Idle (Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = 0 })
  in
  Alcotest.check action_t "zero is not positive" Sm.Invalidated a

let test_sm_store_overwrites_dest () =
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Store { proxy = 0x2000; space = Sm.Dev_space; value = 128 })
  in
  Alcotest.check sm_t "overwritten" (Sm.Dest_loaded dest2) s;
  Alcotest.check action_t "latch" Sm.Latch_dest a

let test_sm_inval_from_destloaded () =
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Store { proxy = 0x1000; space = Sm.Mem_space; value = -5 })
  in
  Alcotest.check sm_t "back to idle" Sm.Idle s;
  Alcotest.check action_t "inval" Sm.Invalidated a

let test_sm_load_starts_transfer () =
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Load { proxy = 0x9000; space = Sm.Mem_space })
  in
  Alcotest.check sm_t "transferring" transferring s;
  Alcotest.check action_t "start"
    (Sm.Start { src_proxy = 0x9000; src_space = Sm.Mem_space; dest })
    a

let test_sm_badload () =
  (* load from the same space as the destination: mem-to-mem or
     dev-to-dev request *)
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Load { proxy = 0x9000; space = Sm.Dev_space })
  in
  Alcotest.check sm_t "reset to idle" Sm.Idle s;
  Alcotest.check action_t "bad load" Sm.Bad_load a

let test_sm_load_in_idle_probes () =
  let s, a = Sm.step Sm.Idle (Sm.Load { proxy = 0; space = Sm.Mem_space }) in
  Alcotest.check sm_t "stays" Sm.Idle s;
  Alcotest.check action_t "probe" Sm.Status_probe a

let test_sm_transferring_ignores_stores () =
  (* "if no transition is depicted ... that event does not cause a
     state transition" — a started transfer is never disturbed *)
  List.iter
    (fun value ->
      let s, a =
        Sm.step transferring
          (Sm.Store { proxy = 0x3000; space = Sm.Dev_space; value })
      in
      Alcotest.check sm_t "unchanged" transferring s;
      Alcotest.check action_t "ignored" Sm.No_action a)
    [ 64; -1; 0 ]

let test_sm_transferring_load_probes () =
  let s, a = Sm.step transferring (Sm.Load { proxy = 0x9000; space = Sm.Mem_space }) in
  Alcotest.check sm_t "unchanged" transferring s;
  Alcotest.check action_t "probe" Sm.Status_probe a

let test_sm_done () =
  let s, a = Sm.step transferring Sm.Done in
  Alcotest.check sm_t "idle" Sm.Idle s;
  Alcotest.check action_t "completed" Sm.Completed a;
  (* Done in other states is a no-op *)
  let s, a = Sm.step Sm.Idle Sm.Done in
  Alcotest.check sm_t "idle stays" Sm.Idle s;
  Alcotest.check action_t "no-op" Sm.No_action a;
  let s, a = Sm.step (Sm.Dest_loaded dest) Sm.Done in
  Alcotest.check sm_t "destloaded stays" (Sm.Dest_loaded dest) s;
  Alcotest.check action_t "no-op" Sm.No_action a

(* ---------- shape words (strided / scatter-gather refinement) ---------- *)

let strided_word = Sm.encode_strided_word ~stride:512 ~chunk:64
let sg_word len = Sm.encode_sg_word ~len

let test_shape_word_roundtrip () =
  (match Sm.decode_shape_word strided_word with
  | Some (`Strided (s, c)) ->
      checki "stride" 512 s;
      checki "chunk" 64 c
  | _ -> Alcotest.fail "strided word did not decode");
  (match Sm.decode_shape_word (sg_word 256) with
  | Some (`Sg l) -> checki "len" 256 l
  | _ -> Alcotest.fail "sg word did not decode");
  (* extremes of the field widths *)
  (match
     Sm.decode_shape_word
       (Sm.encode_strided_word ~stride:Sm.max_stride ~chunk:Sm.max_shape_field)
   with
  | Some (`Strided (s, c)) ->
      checki "max stride" Sm.max_stride s;
      checki "max chunk" Sm.max_shape_field c
  | _ -> Alcotest.fail "max strided word did not decode");
  (* plain counts and garbage are not shape words *)
  checkb "plain count" false (Sm.is_shape_word 4096);
  checkb "negative" false (Sm.is_shape_word (-1));
  checkb "zero" false (Sm.is_shape_word 0);
  checkb "tagged" true (Sm.is_shape_word strided_word);
  checkb "plain value decodes to None" true
    (Sm.decode_shape_word 4096 = None)

let test_shape_word_encode_validation () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "oversized stride" true
    (rejects (fun () ->
         Sm.encode_strided_word ~stride:(Sm.max_stride + 1) ~chunk:64));
  checkb "oversized chunk" true
    (rejects (fun () ->
         Sm.encode_strided_word ~stride:64 ~chunk:(Sm.max_shape_field + 1)));
  checkb "nonpositive chunk" true
    (rejects (fun () -> Sm.encode_strided_word ~stride:64 ~chunk:0));
  checkb "oversized sg len" true
    (rejects (fun () -> Sm.encode_sg_word ~len:(Sm.max_shape_field + 1)));
  checkb "nonpositive sg len" true
    (rejects (fun () -> Sm.encode_sg_word ~len:0))

let test_sm_shape_word_in_idle () =
  (* no destination to refine: protocol violation, machine stays idle *)
  let s, a =
    Sm.step Sm.Idle
      (Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = strided_word })
  in
  Alcotest.check sm_t "stays idle" Sm.Idle s;
  Alcotest.check action_t "inval" Sm.Invalidated a

let test_sm_strided_latch () =
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = strided_word })
  in
  Alcotest.check sm_t "shape refined"
    (Sm.Dest_loaded { dest with Sm.shape = Sm.Strided { stride = 512; chunk = 64 } })
    s;
  Alcotest.check action_t "latched" Sm.Latch_shape a;
  (* a second strided word overwrites the first *)
  let s2, a2 =
    Sm.step s
      (Sm.Store
         { proxy = 0x1000; space = Sm.Dev_space;
           value = Sm.encode_strided_word ~stride:256 ~chunk:32 })
  in
  Alcotest.check sm_t "refinement overwritten"
    (Sm.Dest_loaded { dest with Sm.shape = Sm.Strided { stride = 256; chunk = 32 } })
    s2;
  Alcotest.check action_t "latched again" Sm.Latch_shape a2

let test_sm_strided_wrong_ref_invalidates () =
  (* a strided word must re-reference the latched destination proxy *)
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Store { proxy = 0x2000; space = Sm.Dev_space; value = strided_word })
  in
  Alcotest.check sm_t "wrong proxy resets" Sm.Idle s;
  Alcotest.check action_t "inval" Sm.Invalidated a;
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Store { proxy = 0x1000; space = Sm.Mem_space; value = strided_word })
  in
  Alcotest.check sm_t "wrong space resets" Sm.Idle s;
  Alcotest.check action_t "inval" Sm.Invalidated a

let test_sm_sg_latch () =
  (* each sg word names a fresh proxy in the destination space and
     appends an element, latest first *)
  let s, a =
    Sm.step (Sm.Dest_loaded dest)
      (Sm.Store { proxy = 0x1100; space = Sm.Dev_space; value = sg_word 16 })
  in
  Alcotest.check sm_t "first element"
    (Sm.Dest_loaded
       { dest with Sm.shape = Sm.Gather { rev_elems = [ (0x1100, 16) ] } })
    s;
  Alcotest.check action_t "latched" Sm.Latch_shape a;
  let s2, a2 =
    Sm.step s
      (Sm.Store { proxy = 0x1200; space = Sm.Dev_space; value = sg_word 32 })
  in
  Alcotest.check sm_t "second element prepends"
    (Sm.Dest_loaded
       { dest with
         Sm.shape = Sm.Gather { rev_elems = [ (0x1200, 32); (0x1100, 16) ] } })
    s2;
  Alcotest.check action_t "latched" Sm.Latch_shape a2;
  (* an sg element outside the destination space is a violation *)
  let s3, a3 =
    Sm.step s
      (Sm.Store { proxy = 0x1200; space = Sm.Mem_space; value = sg_word 32 })
  in
  Alcotest.check sm_t "wrong space resets" Sm.Idle s3;
  Alcotest.check action_t "inval" Sm.Invalidated a3

let test_sm_shape_mixing_invalidates () =
  let strided_dest =
    Sm.Dest_loaded
      { dest with Sm.shape = Sm.Strided { stride = 512; chunk = 64 } }
  in
  let s, a =
    Sm.step strided_dest
      (Sm.Store { proxy = 0x1100; space = Sm.Dev_space; value = sg_word 16 })
  in
  Alcotest.check sm_t "sg after strided resets" Sm.Idle s;
  Alcotest.check action_t "inval" Sm.Invalidated a;
  let gather_dest =
    Sm.Dest_loaded
      { dest with Sm.shape = Sm.Gather { rev_elems = [ (0x1100, 16) ] } }
  in
  let s, a =
    Sm.step gather_dest
      (Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = strided_word })
  in
  Alcotest.check sm_t "strided after sg resets" Sm.Idle s;
  Alcotest.check action_t "inval" Sm.Invalidated a

let test_sm_plain_store_resets_shape () =
  (* re-storing a plain count overwrites DESTINATION/COUNT and drops
     any latched refinement — a re-paired initiation must re-issue its
     shape words *)
  let shaped =
    Sm.Dest_loaded
      { dest with Sm.shape = Sm.Strided { stride = 512; chunk = 64 } }
  in
  let s, a =
    Sm.step shaped
      (Sm.Store { proxy = 0x2000; space = Sm.Dev_space; value = 128 })
  in
  Alcotest.check sm_t "shape reset to flat" (Sm.Dest_loaded dest2) s;
  Alcotest.check action_t "plain latch" Sm.Latch_dest a

let test_sm_shaped_load_starts () =
  (* the completing LOAD carries the refinement into Transferring *)
  let shaped_dest =
    { dest with Sm.shape = Sm.Strided { stride = 512; chunk = 64 } }
  in
  let s, a =
    Sm.step (Sm.Dest_loaded shaped_dest)
      (Sm.Load { proxy = 0x9000; space = Sm.Mem_space })
  in
  Alcotest.check sm_t "transferring with shape"
    (Sm.Transferring
       { src_proxy = 0x9000; src_space = Sm.Mem_space; dest = shaped_dest })
    s;
  Alcotest.check action_t "start carries shape"
    (Sm.Start { src_proxy = 0x9000; src_space = Sm.Mem_space; dest = shaped_dest })
    a

let test_sm_totality () =
  (* every (state, event) pair steps without raising *)
  let states =
    [
      Sm.Idle;
      Sm.Dest_loaded dest;
      Sm.Dest_loaded
        { dest with Sm.shape = Sm.Strided { stride = 512; chunk = 64 } };
      Sm.Dest_loaded
        { dest with Sm.shape = Sm.Gather { rev_elems = [ (0x1100, 16) ] } };
      transferring;
    ]
  in
  let events =
    [
      Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = 8 };
      Sm.Store { proxy = 0x1000; space = Sm.Mem_space; value = 8 };
      Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = -1 };
      Sm.Store { proxy = 0x1000; space = Sm.Dev_space; value = strided_word };
      Sm.Store { proxy = 0x1100; space = Sm.Dev_space; value = sg_word 16 };
      Sm.Load { proxy = 0x1000; space = Sm.Dev_space };
      Sm.Load { proxy = 0x1000; space = Sm.Mem_space };
      Sm.Done;
    ]
  in
  List.iter
    (fun s -> List.iter (fun e -> ignore (Sm.step s e)) events)
    states;
  checki "pairs exercised" 40 (List.length states * List.length events)

(* ---------- Udma_engine at the physical level ---------- *)

let rig ?(mode = Udma_engine.Basic) () =
  let layout = Layout.create ~page_size:4096 ~mem_pages:16 ~dev_pages:8 in
  let mem = Phys_mem.create ~frames:16 ~page_size:4096 in
  let engine = Engine.create () in
  let bus = Bus.create mem in
  let dma = Dma_engine.create ~engine ~bus () in
  let udma = Udma_engine.create ~engine ~layout ~bus ~dma ~mode () in
  let port, store = Device.buffer "dev" ~size:(8 * 4096) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  (engine, layout, mem, bus, udma, store)

(* physical proxy addresses *)
let mp layout addr = Layout.proxy_of layout addr
let dp layout page offset = Layout.dev_proxy_addr layout ~page ~offset

let test_engine_basic_sequence () =
  let engine, layout, mem, _, udma, store = rig () in
  Phys_mem.write_bytes mem ~addr:4096 (Bytes.of_string "0123456789abcdef");
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 16l;
  (match Udma_engine.state udma with
  | Sm.Dest_loaded d -> checki "count latched" 16 d.Sm.nbytes
  | s -> Alcotest.failf "expected DestLoaded, got %a" Sm.pp_state s);
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "started" true st.Status.started;
  checkb "transferring" true st.Status.transferring;
  checkb "match on initiating load" true st.Status.matches;
  checki "remaining is full count" 16 st.Status.remaining_bytes;
  Engine.run_until_idle engine;
  Alcotest.check Alcotest.string "data" "0123456789abcdef"
    (Bytes.to_string (Bytes.sub store 0 16));
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "probe after done: invalid" true st.Status.invalid;
  checkb "match cleared" false st.Status.matches

let test_engine_dev_to_mem () =
  let engine, layout, mem, _, udma, store = rig () in
  Bytes.blit_string "from-the-device!" 0 store 100 16;
  (* dest = memory proxy, source = device proxy *)
  Udma_engine.handle_store udma ~paddr:(mp layout 8192) 16l;
  let st = Udma_engine.handle_load udma ~paddr:(dp layout 0 100) in
  checkb "started" true st.Status.started;
  Engine.run_until_idle engine;
  Alcotest.check Alcotest.string "landed" "from-the-device!"
    (Bytes.to_string (Phys_mem.read_bytes mem ~addr:8192 ~len:16))

let test_engine_badload_wrong_space () =
  let _, layout, _, _, udma, _ = rig () in
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 16l;
  (* load from device space while dest is device space: dev-to-dev *)
  let st = Udma_engine.handle_load udma ~paddr:(dp layout 1 0) in
  checkb "wrong space flagged" true st.Status.wrong_space;
  checkb "not started" false st.Status.started;
  checkb "machine reset" true (Udma_engine.state udma = Sm.Idle);
  checki "counter" 1 (Udma_engine.counters udma).Udma_engine.bad_loads

let test_engine_invalidate () =
  let _, layout, _, _, udma, _ = rig () in
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 64l;
  Udma_engine.invalidate udma;
  checkb "idle" true (Udma_engine.state udma = Sm.Idle);
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "subsequent load is a probe" false st.Status.started;
  checkb "invalid flag" true st.Status.invalid

let test_engine_page_boundary_clamp () =
  let engine, layout, _, _, udma, _ = rig () in
  (* source starts 100 bytes before a page end; ask for 4096 *)
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 4096l;
  let src = mp layout (2 * 4096 - 100) in
  let st = Udma_engine.handle_load udma ~paddr:src in
  checkb "started" true st.Status.started;
  checki "clamped to source page room" 100 st.Status.remaining_bytes;
  checki "clamp counted" 1 (Udma_engine.counters udma).Udma_engine.clamped;
  Engine.run_until_idle engine;
  (* destination-side clamp *)
  Udma_engine.handle_store udma ~paddr:(dp layout 0 (4096 - 8)) 4096l;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checki "clamped to dest page room" 8 st.Status.remaining_bytes

let test_engine_unbound_device_page () =
  (* bind only 4 of the layout's 8 device-proxy pages: an access to an
     unbound page must report a device error and reset the machine *)
  let layout2 = Layout.create ~page_size:4096 ~mem_pages:16 ~dev_pages:8 in
  let mem = Phys_mem.create ~frames:16 ~page_size:4096 in
  let engine = Engine.create () in
  let bus = Bus.create mem in
  let dma = Dma_engine.create ~engine ~bus () in
  let udma2 = Udma_engine.create ~engine ~layout:layout2 ~bus ~dma () in
  let port, _ = Device.buffer "d" ~size:(4 * 4096) in
  Udma_engine.attach_device udma2 ~base_page:0 ~pages:4 ~port ();
  Udma_engine.handle_store udma2 ~paddr:(dp layout2 6 0) 16l;
  let st = Udma_engine.handle_load udma2 ~paddr:(mp layout2 4096) in
  checkb "device error" true (st.Status.device_error <> 0);
  checkb "not started" false st.Status.started;
  checkb "reset" true (Udma_engine.state udma2 = Sm.Idle)

let test_engine_validate_hook () =
  let layout = Layout.create ~page_size:4096 ~mem_pages:16 ~dev_pages:8 in
  let mem = Phys_mem.create ~frames:16 ~page_size:4096 in
  let engine = Engine.create () in
  let bus = Bus.create mem in
  let dma = Dma_engine.create ~engine ~bus () in
  let udma = Udma_engine.create ~engine ~layout ~bus ~dma () in
  let port, _ = Device.buffer "d" ~size:(8 * 4096) in
  (* a device that requires 4-byte alignment, like SHRIMP (§8) *)
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port
    ~validate:(fun ~dev_addr ~nbytes ->
      if dev_addr land 3 <> 0 || nbytes land 3 <> 0 then 1 else 0)
    ();
  Udma_engine.handle_store udma ~paddr:(dp layout 0 2) 16l;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "alignment rejected" true (st.Status.device_error <> 0);
  (* aligned passes *)
  Udma_engine.handle_store udma ~paddr:(dp layout 0 4) 16l;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "aligned accepted" true st.Status.started

let test_engine_status_via_bus () =
  let _, layout, _, bus, _udma, _ = rig () in
  (* a word load from proxy space through the bus returns the encoded
     status, exactly what the user's LOAD instruction sees *)
  let w = Bus.load_word bus (mp layout 4096) in
  let st = Status.decode w in
  checkb "invalid (idle probe)" true st.Status.invalid

let test_engine_mem_frame_busy_during_transfer () =
  let engine, layout, _, _, udma, _ = rig () in
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 4096l;
  ignore (Udma_engine.handle_load udma ~paddr:(mp layout (3 * 4096)));
  checkb "frame 3 busy" true (Udma_engine.mem_frame_busy udma ~frame:3);
  checkb "frame 5 free" false (Udma_engine.mem_frame_busy udma ~frame:5);
  Engine.run_until_idle engine;
  checkb "free after" false (Udma_engine.mem_frame_busy udma ~frame:3)

(* ---------- queued mode ---------- *)

let test_queued_accepts_while_busy () =
  let engine, layout, _, _, udma, store =
    rig ~mode:(Udma_engine.Queued { depth = 4 }) ()
  in
  (* three back-to-back pieces without waiting *)
  for i = 0 to 2 do
    Udma_engine.handle_store udma ~paddr:(dp layout i 0) 4096l;
    let st = Udma_engine.handle_load udma ~paddr:(mp layout ((i + 1) * 4096)) in
    checkb (Printf.sprintf "piece %d accepted" i) true st.Status.started
  done;
  checki "outstanding" 3 (Udma_engine.outstanding udma);
  checkb "machine back to idle between pairs" true
    (Udma_engine.state udma = Sm.Idle);
  Engine.run_until_idle engine;
  checki "all completed" 3 (Udma_engine.counters udma).Udma_engine.completions;
  checkb "device wrote all pages" true (Bytes.length store >= 3 * 4096)

let test_queued_refuses_when_full () =
  let engine, layout, _, _, udma, _ =
    rig ~mode:(Udma_engine.Queued { depth = 1 }) ()
  in
  (* first: starts on the DMA engine; second: queued; third: refused *)
  let issue i =
    Udma_engine.handle_store udma ~paddr:(dp layout i 0) 4096l;
    Udma_engine.handle_load udma ~paddr:(mp layout ((i + 1) * 4096))
  in
  checkb "1 started" true (issue 0).Status.started;
  checkb "2 queued" true (issue 1).Status.started;
  let st = issue 2 in
  checkb "3 refused" false st.Status.started;
  checkb "queue-full flag" true st.Status.queue_full;
  (* §7: the DESTINATION stays latched, the LOAD alone can be retried *)
  (match Udma_engine.state udma with
  | Sm.Dest_loaded _ -> ()
  | s -> Alcotest.failf "expected DestLoaded after refusal, got %a" Sm.pp_state s);
  Engine.run_until_idle engine;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout (3 * 4096)) in
  checkb "retried LOAD succeeds after drain" true st.Status.started;
  Engine.run_until_idle engine

let test_queued_refcounts () =
  let engine, layout, _, _, udma, _ =
    rig ~mode:(Udma_engine.Queued { depth = 4 }) ()
  in
  (* two requests from the same source frame *)
  for i = 0 to 1 do
    Udma_engine.handle_store udma ~paddr:(dp layout i 0) 4096l;
    ignore (Udma_engine.handle_load udma ~paddr:(mp layout (2 * 4096)))
  done;
  checki "refcount 2" 2 (Udma_engine.refcount udma ~frame:2);
  checkb "frame busy" true (Udma_engine.mem_frame_busy udma ~frame:2);
  Engine.run_until_idle engine;
  checki "refcount drains" 0 (Udma_engine.refcount udma ~frame:2)

let test_queued_match_is_associative () =
  let engine, layout, _, _, udma, _ =
    rig ~mode:(Udma_engine.Queued { depth = 4 }) ()
  in
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 4096l;
  ignore (Udma_engine.handle_load udma ~paddr:(mp layout 4096));
  Udma_engine.handle_store udma ~paddr:(dp layout 1 0) 4096l;
  ignore (Udma_engine.handle_load udma ~paddr:(mp layout (2 * 4096)));
  (* both outstanding requests answer to the match query *)
  let st1 = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "queued req 1 matches" true st1.Status.matches;
  let st2 = Udma_engine.handle_load udma ~paddr:(mp layout (2 * 4096)) in
  checkb "queued req 2 matches" true st2.Status.matches;
  let st3 = Udma_engine.handle_load udma ~paddr:(mp layout (3 * 4096)) in
  checkb "other address does not" false st3.Status.matches;
  Engine.run_until_idle engine;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "cleared after completion" false st.Status.matches

let test_system_queue_priority () =
  let engine, layout, _, _, udma, _ =
    rig ~mode:(Udma_engine.Queued { depth = 8 }) ()
  in
  let order = ref [] in
  Udma_engine.set_start_hook udma (fun ~src_proxy ~dest_proxy:_ ~nbytes:_ ->
      order := src_proxy :: !order);
  (* occupy the engine, then queue one user and one system request;
     the system one must run first *)
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 4096l;
  ignore (Udma_engine.handle_load udma ~paddr:(mp layout 4096));
  Udma_engine.handle_store udma ~paddr:(dp layout 1 0) 4096l;
  ignore (Udma_engine.handle_load udma ~paddr:(mp layout (2 * 4096)));
  (match
     Udma_engine.enqueue_system udma
       ~src_proxy:(mp layout (3 * 4096))
       ~dest_proxy:(dp layout 2 0) ~nbytes:4096
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "system enqueue refused");
  (* completion order: the start hook fires at acceptance, so watch
     the DMA completion order instead via draining *)
  Engine.run_until_idle engine;
  checki "all three ran" 3 (Udma_engine.counters udma).Udma_engine.completions

let test_basic_enqueue_system_requires_idle () =
  let engine, layout, _, _, udma, _ = rig () in
  (match
     Udma_engine.enqueue_system udma ~src_proxy:(mp layout 4096)
       ~dest_proxy:(dp layout 0 0) ~nbytes:64
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "idle engine should accept");
  (* busy now: depth-0 semantics refuse *)
  checkb "busy refuses" true
    (Udma_engine.enqueue_system udma ~src_proxy:(mp layout 8192)
       ~dest_proxy:(dp layout 1 0) ~nbytes:64
     = Error `Full);
  (* and a user pair during the kernel transfer is held off: the
     machine mirrors Transferring, so the store is ignored *)
  Udma_engine.handle_store udma ~paddr:(dp layout 1 0) 64l;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 8192) in
  checkb "user probe sees transferring" true st.Status.transferring;
  checkb "user pair not started" false st.Status.started;
  Engine.run_until_idle engine;
  checkb "idle after" true (Udma_engine.state udma = Sm.Idle)

let test_abort_active () =
  let engine, layout, mem, _, udma, store = rig () in
  Phys_mem.write_bytes mem ~addr:4096 (Bytes.make 64 'Z');
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 64l;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "started" true st.Status.started;
  checkb "abort succeeds" true (Udma_engine.abort_active udma);
  checkb "machine idle" true (Udma_engine.state udma = Sm.Idle);
  checki "abort counted" 1 (Udma_engine.counters udma).Udma_engine.aborts;
  Engine.run_until_idle engine;
  checkb "no data moved" true (Bytes.get store 0 = '\000');
  checki "no completion" 0 (Udma_engine.counters udma).Udma_engine.completions;
  (* the initiating process's completion check sees the match clear *)
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "match cleared" false st.Status.matches;
  checkb "abort when idle is false" false (Udma_engine.abort_active udma);
  (* the engine is reusable afterwards *)
  Udma_engine.handle_store udma ~paddr:(dp layout 0 0) 64l;
  let st = Udma_engine.handle_load udma ~paddr:(mp layout 4096) in
  checkb "restarted fine" true st.Status.started;
  Engine.run_until_idle engine;
  checkb "data moved this time" true (Bytes.get store 0 = 'Z')

let test_queued_abort_dispatches_next () =
  let engine, layout, _, _, udma, _ =
    rig ~mode:(Udma_engine.Queued { depth = 4 }) ()
  in
  for i = 0 to 1 do
    Udma_engine.handle_store udma ~paddr:(dp layout i 0) 4096l;
    ignore (Udma_engine.handle_load udma ~paddr:(mp layout ((i + 1) * 4096)))
  done;
  checki "two outstanding" 2 (Udma_engine.outstanding udma);
  checkb "abort head" true (Udma_engine.abort_active udma);
  checki "one left and dispatched" 1 (Udma_engine.outstanding udma);
  Engine.run_until_idle engine;
  checki "the queued one completed" 1
    (Udma_engine.counters udma).Udma_engine.completions

let test_queued_dev_proxy_match () =
  let engine, layout, _, _, udma, _ =
    rig ~mode:(Udma_engine.Queued { depth = 4 }) ()
  in
  Udma_engine.handle_store udma ~paddr:(dp layout 2 0) 4096l;
  ignore (Udma_engine.handle_load udma ~paddr:(mp layout 4096));
  (* the associative query answers for the DESTINATION base too *)
  let st = Udma_engine.handle_load udma ~paddr:(dp layout 2 0) in
  checkb "dest proxy matches" true st.Status.matches;
  Engine.run_until_idle engine;
  let st = Udma_engine.handle_load udma ~paddr:(dp layout 2 0) in
  checkb "clears after completion" false st.Status.matches

let test_nipt_scale_32k () =
  (* the board's 15-bit index: 32K destination pages *)
  let module Backend = Udma_protect.Backend in
  let n = Backend.create Backend.Proxy ~entries:32768 () in
  Alcotest.(check int) "capacity" 32768 (Backend.capacity n);
  ignore (Backend.grant n ~owner:1 ~index:32767 ~dst_node:1 ~dst_frame:42);
  checkb "last entry works" true (Backend.decode n ~index:32767 <> None)

let () =
  Alcotest.run "udma_core"
    [
      ( "status",
        [
          Alcotest.test_case "encode/decode" `Quick test_status_encode_decode;
          Alcotest.test_case "initiation flag polarity" `Quick
            test_status_initiation_flag_polarity;
          Alcotest.test_case "remaining saturates" `Quick
            test_status_remaining_saturates;
          Alcotest.test_case "predicates" `Quick test_status_predicates;
          Alcotest.test_case "validation" `Quick test_status_validation;
        ] );
      ( "state_machine",
        [
          Alcotest.test_case "store from idle" `Quick test_sm_store_from_idle;
          Alcotest.test_case "inval from idle" `Quick test_sm_inval_from_idle;
          Alcotest.test_case "zero count is inval" `Quick test_sm_zero_count_is_inval;
          Alcotest.test_case "store overwrites dest" `Quick
            test_sm_store_overwrites_dest;
          Alcotest.test_case "inval from destloaded" `Quick
            test_sm_inval_from_destloaded;
          Alcotest.test_case "load starts transfer" `Quick
            test_sm_load_starts_transfer;
          Alcotest.test_case "badload" `Quick test_sm_badload;
          Alcotest.test_case "load in idle probes" `Quick test_sm_load_in_idle_probes;
          Alcotest.test_case "transferring ignores stores" `Quick
            test_sm_transferring_ignores_stores;
          Alcotest.test_case "transferring load probes" `Quick
            test_sm_transferring_load_probes;
          Alcotest.test_case "done" `Quick test_sm_done;
          Alcotest.test_case "totality" `Quick test_sm_totality;
        ] );
      ( "shape-words",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick
            test_shape_word_roundtrip;
          Alcotest.test_case "encode validation" `Quick
            test_shape_word_encode_validation;
          Alcotest.test_case "shape word in idle invalidates" `Quick
            test_sm_shape_word_in_idle;
          Alcotest.test_case "strided word refines dest" `Quick
            test_sm_strided_latch;
          Alcotest.test_case "strided word must re-reference dest" `Quick
            test_sm_strided_wrong_ref_invalidates;
          Alcotest.test_case "sg words append elements" `Quick test_sm_sg_latch;
          Alcotest.test_case "mixing strided and sg invalidates" `Quick
            test_sm_shape_mixing_invalidates;
          Alcotest.test_case "plain re-store resets shape" `Quick
            test_sm_plain_store_resets_shape;
          Alcotest.test_case "load carries shape into transfer" `Quick
            test_sm_shaped_load_starts;
        ] );
      ( "engine-basic",
        [
          Alcotest.test_case "two-reference sequence" `Quick
            test_engine_basic_sequence;
          Alcotest.test_case "device to memory" `Quick test_engine_dev_to_mem;
          Alcotest.test_case "badload wrong space" `Quick
            test_engine_badload_wrong_space;
          Alcotest.test_case "invalidate" `Quick test_engine_invalidate;
          Alcotest.test_case "page boundary clamp" `Quick
            test_engine_page_boundary_clamp;
          Alcotest.test_case "unbound device page" `Quick
            test_engine_unbound_device_page;
          Alcotest.test_case "device validate hook" `Quick test_engine_validate_hook;
          Alcotest.test_case "status via bus" `Quick test_engine_status_via_bus;
          Alcotest.test_case "frame busy during transfer" `Quick
            test_engine_mem_frame_busy_during_transfer;
        ] );
      ( "abort-extension",
        [
          Alcotest.test_case "abort active transfer" `Quick test_abort_active;
          Alcotest.test_case "queued abort dispatches next" `Quick
            test_queued_abort_dispatches_next;
          Alcotest.test_case "dest-proxy associative match" `Quick
            test_queued_dev_proxy_match;
          Alcotest.test_case "32K NIPT scale" `Quick test_nipt_scale_32k;
        ] );
      ( "engine-queued",
        [
          Alcotest.test_case "accepts while busy" `Quick test_queued_accepts_while_busy;
          Alcotest.test_case "refuses when full" `Quick test_queued_refuses_when_full;
          Alcotest.test_case "refcounts" `Quick test_queued_refcounts;
          Alcotest.test_case "associative match" `Quick
            test_queued_match_is_associative;
          Alcotest.test_case "system queue priority" `Quick test_system_queue_priority;
          Alcotest.test_case "basic enqueue_system requires idle" `Quick
            test_basic_enqueue_system_requires_idle;
        ] );
    ]
