(* Unit tests for the SHRIMP network stack: NIPT, FIFOs, router, the
   network interface, the multi-node system and the messaging layer. *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Phys_mem = Udma_memory.Phys_mem
module Initiator = Udma.Initiator
module Status = Udma.Status
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Kernel = Udma_os.Kernel
module Vm = Udma_os.Vm
module Packet = Udma_shrimp.Packet
module Backend = Udma_protect.Backend
module Fifo = Udma_shrimp.Fifo
module Router = Udma_shrimp.Router
module Ni = Udma_shrimp.Network_interface
module System = Udma_shrimp.System
module Messaging = Udma_shrimp.Messaging

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let pattern n seed = Bytes.init n (fun i -> Char.chr ((i + seed) land 0xff))

(* ---------- NIPT (proxy backend's destination table) ---------- *)

let test_nipt_basic () =
  let t = Backend.create Backend.Proxy ~entries:32 () in
  checki "capacity" 32 (Backend.capacity t);
  checkb "empty" true (Backend.decode t ~index:0 = None);
  ignore (Backend.grant t ~owner:1 ~index:5 ~dst_node:2 ~dst_frame:77);
  (match Backend.decode t ~index:5 with
  | Some e ->
      checki "node" 2 e.Backend.dst_node;
      checki "frame" 77 e.Backend.dst_frame
  | None -> Alcotest.fail "entry lost");
  checki "valid count" 1 (Backend.valid_count t);
  ignore (Backend.revoke t ~index:5);
  checkb "cleared" true (Backend.decode t ~index:5 = None);
  checkb "out of range is None" true (Backend.decode t ~index:99 = None)

(* ---------- Fifo ---------- *)

let pkt ?(len = 100) seq =
  { Packet.src_node = 0; dst_node = 1; dst_paddr = 0;
    payload = Bytes.make len 'x'; seq }

let test_fifo_order_and_capacity () =
  let f = Fifo.create ~capacity_bytes:300 in
  checkb "push 1" true (Fifo.push f (pkt 1));
  checkb "push 2" true (Fifo.push f (pkt 2));
  checkb "third does not fit (2x116 used)" false (Fifo.push f (pkt ~len:100 3));
  checki "rejections" 1 (Fifo.rejections f);
  (match Fifo.pop f with
  | Some p -> checki "fifo order" 1 p.Packet.seq
  | None -> Alcotest.fail "empty");
  checkb "space reclaimed" true (Fifo.push f (pkt 3));
  checki "length" 2 (Fifo.length f)

(* ---------- Router ---------- *)

let test_router_mesh_hops () =
  let engine = Engine.create () in
  let r = Router.create ~engine ~nodes:9 () in
  (* 3x3 mesh, row-major ids *)
  Alcotest.(check (pair int int)) "coords of 4" (1, 1) (Router.coords r 4);
  checki "self" 0 (Router.hops r ~src:4 ~dst:4);
  checki "adjacent" 1 (Router.hops r ~src:0 ~dst:1);
  checki "corner to corner" 4 (Router.hops r ~src:0 ~dst:8)

let test_router_delivery_and_latency () =
  let engine = Engine.create () in
  let r = Router.create ~engine ~nodes:4 () in
  let got = ref [] in
  Router.register r ~node_id:1 (fun p -> got := (p.Packet.seq, Engine.now engine) :: !got);
  let p = { (pkt 7) with Packet.dst_node = 1 } in
  Router.send r p;
  checkb "not yet delivered" true (!got = []);
  Engine.run_until_idle engine;
  (match !got with
  | [ (seq, at) ] ->
      checki "right packet" 7 seq;
      checki "at the modelled latency"
        (Router.latency_cycles r ~src:0 ~dst:1 ~bytes:(Packet.size_bytes p))
        at
  | _ -> Alcotest.fail "expected exactly one delivery");
  checki "counters" 1 (Router.packets_routed r)

let test_router_unregistered_sink () =
  let engine = Engine.create () in
  let r = Router.create ~engine ~nodes:2 () in
  checkb "raises" true
    (try Router.send r (pkt 1); false with Invalid_argument _ -> true)

(* With contention enabled but no competing traffic the per-link walk
   must telescope to exactly the closed-form latency. *)
let contended_router nodes =
  let engine = Engine.create () in
  let r =
    Router.create ~engine ~nodes
      ~config:{ Router.default_config with Router.link_contention = true }
      ()
  in
  (engine, r)

let test_router_contention_idle_closed_form () =
  let engine, r = contended_router 9 in
  let arrivals = ref [] in
  for d = 1 to 8 do
    Router.register r ~node_id:d (fun p ->
        arrivals := (p.Packet.dst_node, Engine.now engine) :: !arrivals)
  done;
  (* one at a time, drained between sends: links are always idle *)
  for d = 1 to 8 do
    let p = { (pkt d) with Packet.dst_node = d } in
    let t0 = Engine.now engine in
    Router.send r p;
    Engine.run_until_idle engine;
    match List.assoc_opt d !arrivals with
    | Some at ->
        checki
          (Printf.sprintf "closed form to node %d" d)
          (t0 + Router.latency_cycles r ~src:0 ~dst:d
                  ~bytes:(Packet.size_bytes p))
          at
    | None -> Alcotest.fail "no delivery"
  done;
  (* idle links never made anyone wait *)
  checki "no wait cycles" 0
    (List.fold_left
       (fun a (l : Router.link_stat) -> a + l.Router.wait_cycles)
       0 (Router.link_stats r))

let test_router_contention_queues_shared_link () =
  (* two packets, same source, back to back: the second must queue
     behind the first's wire occupancy with contention on, and must
     not without *)
  let arrival contention =
    let engine = Engine.create () in
    let r =
      Router.create ~engine ~nodes:4
        ~config:{ Router.default_config with Router.link_contention = contention }
        ()
    in
    let last = ref 0 in
    Router.register r ~node_id:1 (fun _ -> last := Engine.now engine);
    Router.send r { (pkt ~len:1000 0) with Packet.dst_node = 1 };
    Router.send r { (pkt ~len:1000 1) with Packet.dst_node = 1 };
    Engine.run_until_idle engine;
    !last
  in
  let free = arrival false and contended = arrival true in
  checkb "second packet delayed by link occupancy" true (contended > free);
  (* and the delay is at least the first packet's wire occupancy *)
  checkb "delay covers serialisation" true (contended - free >= 250)

(* Regression for the phantom-node bug: 5 nodes cover a 3-wide mesh
   with a partial top row, so the dimension-order path 4 -> 2 used to
   cross node (2,1) = 5 >= node_count. Such counts are now rejected. *)
let test_router_rejects_partial_row () =
  List.iter
    (fun n -> checkb (Printf.sprintf "valid %d" n) true (Router.valid_nodes n))
    [ 2; 4; 6; 9; 12; 16; 20; 25; 36; 64 ];
  List.iter
    (fun n ->
      checkb (Printf.sprintf "invalid %d" n) false (Router.valid_nodes n);
      checkb
        (Printf.sprintf "create %d raises" n)
        true
        (try
           ignore (Router.create ~engine:(Engine.create ()) ~nodes:n ());
           false
         with Invalid_argument _ -> true))
    [ 5; 7; 8; 10; 11 ];
  (* the bug's own example, on the nearest valid count: every hop of
     4 -> 2 on the 6-node (3x2) mesh stays in range *)
  let r = Router.create ~engine:(Engine.create ()) ~nodes:6 () in
  List.iter
    (fun (a, b) ->
      checkb "hop in range" true (a >= 0 && a < 6 && b >= 0 && b < 6))
    (Router.path r ~src:4 ~dst:2)

(* With unlimited credits the shared-wire reservation list never opens
   a gap, so any VC count must time a contended burst identically to
   the single-FIFO model — the degeneration DESIGN.md §12 relies on —
   while the allocator still spreads packets over the VCs. *)
let test_router_vcs_degenerate_timing () =
  let arrivals vc_count =
    let engine = Engine.create () in
    let r =
      Router.create ~engine ~nodes:4
        ~config:
          { Router.default_config with
            Router.link_contention = true;
            Router.vc_count }
        ()
    in
    let got = ref [] in
    for d = 1 to 3 do
      Router.register r ~node_id:d (fun p ->
          got := (d, p.Packet.seq, Engine.now engine) :: !got)
    done;
    for s = 0 to 5 do
      Router.send r { (pkt ~len:800 s) with Packet.dst_node = 1 + (s mod 3) }
    done;
    Engine.run_until_idle engine;
    (List.rev !got, r)
  in
  let base, _ = arrivals 1 in
  List.iter
    (fun vcs ->
      let times, r = arrivals vcs in
      checkb
        (Printf.sprintf "%d VCs time the burst identically" vcs)
        true (times = base);
      (* every VC of the loaded 0->1 link saw at least one grant *)
      let grants =
        List.filter
          (fun (v : Router.vc_stat) ->
            v.Router.vc_from = 0 && v.Router.vc_to = 1
            && v.Router.vc_grants > 0)
          (Router.vc_stats r)
      in
      checkb
        (Printf.sprintf "%d VCs all granted on the shared link" vcs)
        true
        (List.length grants = vcs))
    [ 2; 4 ]

(* Finite deposit credits: a back-to-back burst overruns one slot, so
   later claims stall on the wire (net.credit.stalls), the injection
   gate reports a future ready time mid-burst, conservation holds at
   the end, and a dead link funnels grants through NACK retry polls. *)
let test_router_credit_gate () =
  let engine = Engine.create () in
  let r =
    Router.create ~engine ~nodes:4
      ~config:
        { Router.default_config with
          Router.link_contention = true;
          Router.rx_credits = Some 1 }
      ()
  in
  Router.register r ~node_id:1 (fun _ -> ());
  checkb "idle gate is open" true
    (Router.injection_ready r ~src:0 ~dst:1 = Engine.now engine);
  for s = 0 to 3 do
    Router.send r { (pkt ~len:1000 s) with Packet.dst_node = 1 }
  done;
  checkb "gate closes mid-burst" true
    (Router.injection_ready r ~src:0 ~dst:1 > Engine.now engine);
  Engine.run_until_idle engine;
  let m = Engine.metrics engine in
  checkb "stalls counted" true (Udma_obs.Metrics.get m "net.credit.stalls" > 0);
  checkb "conservation clean" true (Router.check_credits r = None);
  List.iter
    (fun (c : Router.credit_stat) ->
      checki "drained pool all free" c.Router.cr_capacity c.Router.cr_free)
    (Router.credit_stats r);
  (* dead link: the grant is quantised into retry polls *)
  Router.set_link_fault r ~from_node:0 ~to_node:1 Router.Link_dead;
  for s = 4 to 6 do
    Router.send r { (pkt ~len:1000 s) with Packet.dst_node = 1 }
  done;
  Engine.run_until_idle engine;
  checkb "nacks counted across the dead link" true
    (Udma_obs.Metrics.get m "net.credit.nacks" > 0);
  checkb "conservation survives the dead link" true
    (Router.check_credits r = None)

let adaptive_router ?(nodes = 4) () =
  let engine = Engine.create () in
  let r =
    Router.create ~engine ~nodes
      ~config:
        { Router.default_config with
          Router.link_contention = true;
          Router.routing = `Minimal_adaptive }
      ()
  in
  (engine, r)

let link_xmits r ~from_node ~to_node =
  match
    List.find_opt
      (fun (l : Router.link_stat) ->
        l.Router.from_node = from_node && l.Router.to_node = to_node)
      (Router.link_stats r)
  with
  | Some l -> l.Router.xmits
  | None -> 0

(* On an idle mesh minimal-adaptive must reproduce the dimension-order
   path exactly (ties go to the X link). *)
let test_adaptive_idle_matches_dimension_order () =
  let _, r = adaptive_router ~nodes:9 () in
  for src = 0 to 8 do
    for dst = 0 to 8 do
      if src <> dst then
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "route %d->%d" src dst)
          (Router.path r ~src ~dst)
          (Router.route r ~src ~dst)
    done
  done

(* 2x2 mesh, X link 0->1 killed: adaptive must take the Y detour
   0->2->3 and never touch the dead link; the detour has the same hop
   count, so the arrival is still the closed form. *)
let test_adaptive_routes_around_dead_link () =
  let engine, r = adaptive_router () in
  Router.set_link_fault r ~from_node:0 ~to_node:1 Router.Link_dead;
  let at = ref 0 in
  Router.register r ~node_id:3 (fun _ -> at := Engine.now engine);
  let p = { (pkt 1) with Packet.dst_node = 3 } in
  Router.send r p;
  Engine.run_until_idle engine;
  checki "dead link untouched" 0 (link_xmits r ~from_node:0 ~to_node:1);
  checki "detour first hop" 1 (link_xmits r ~from_node:0 ~to_node:2);
  checki "detour second hop" 1 (link_xmits r ~from_node:2 ~to_node:3);
  checki "no dead crossings" 0
    (Udma_obs.Metrics.get (Engine.metrics engine) "net.link.dead_crossings");
  checki "closed-form arrival"
    (Router.latency_cycles r ~src:0 ~dst:3 ~bytes:(Packet.size_bytes p))
    !at

(* The same fault under dimension-order: the fixed path has no
   alternative, so the packet crosses the dead link on the slow
   recovery path — counted, and far slower than the closed form. *)
let test_dimension_order_crosses_dead_link () =
  let engine = Engine.create () in
  let r =
    Router.create ~engine ~nodes:4
      ~config:{ Router.default_config with Router.link_contention = true }
      ()
  in
  Router.set_link_fault r ~from_node:0 ~to_node:1 Router.Link_dead;
  let at = ref 0 in
  Router.register r ~node_id:3 (fun _ -> at := Engine.now engine);
  let p = { (pkt 1) with Packet.dst_node = 3 } in
  Router.send r p;
  Engine.run_until_idle engine;
  checki "crossed the dead link" 1 (link_xmits r ~from_node:0 ~to_node:1);
  checki "dead crossing counted" 1
    (Udma_obs.Metrics.get (Engine.metrics engine) "net.link.dead_crossings");
  let occ = (Packet.size_bytes p + 3) / 4 in
  checkb "recovery path is slow" true
    (!at >= Router.dead_crossing_factor * occ)

(* A slowed link stretches the crossing packet's own tail and the
   queueing of the packet behind it. *)
let test_slow_link_stretches_occupancy () =
  let arrival fault =
    let engine = Engine.create () in
    let r =
      Router.create ~engine ~nodes:4
        ~config:{ Router.default_config with Router.link_contention = true }
        ()
    in
    Router.set_link_fault r ~from_node:0 ~to_node:1 fault;
    let last = ref 0 in
    Router.register r ~node_id:1 (fun _ -> last := Engine.now engine);
    Router.send r { (pkt ~len:1000 0) with Packet.dst_node = 1 };
    Router.send r { (pkt ~len:1000 1) with Packet.dst_node = 1 };
    Engine.run_until_idle engine;
    (!last, List.fold_left
              (fun a (l : Router.link_stat) -> a + l.Router.wait_cycles)
              0 (Router.link_stats r))
  in
  let healthy, _ = arrival Router.Link_ok in
  let slowed, waited = arrival (Router.Link_slow 4) in
  (* 251 words: each slow crossing holds the wire 4x251 cycles *)
  checkb "both packets delayed" true (slowed >= healthy + 2 * 3 * 251);
  checkb "second packet queued longer" true (waited > 0)

(* Adaptive reacts to busy state: with the X link 0->1 already claimed
   by an earlier packet, a 0->3 packet turns south first. *)
let test_adaptive_prefers_less_busy_link () =
  let engine, r = adaptive_router () in
  Router.register r ~node_id:1 (fun _ -> ());
  Router.register r ~node_id:3 (fun _ -> ());
  Router.send r { (pkt ~len:1000 0) with Packet.dst_node = 1 };
  Router.send r { (pkt ~len:1000 1) with Packet.dst_node = 3 };
  Engine.run_until_idle engine;
  checki "took the idle Y link first" 1 (link_xmits r ~from_node:0 ~to_node:2);
  checki "adaptive turn counted" 1
    (Udma_obs.Metrics.get (Engine.metrics engine) "net.router.adaptive_turns")

let test_set_link_fault_validates () =
  let engine = Engine.create () in
  let r = Router.create ~engine ~nodes:9 () in
  checkb "non-adjacent raises" true
    (try Router.set_link_fault r ~from_node:0 ~to_node:8 Router.Link_dead; false
     with Invalid_argument _ -> true);
  checkb "bad slow factor raises" true
    (try Router.set_link_fault r ~from_node:0 ~to_node:1 (Router.Link_slow 0);
         false
     with Invalid_argument _ -> true);
  checki "unset fault reads Link_ok" 0
    (match Router.link_fault r ~from_node:0 ~to_node:1 with
    | Router.Link_ok -> 0
    | _ -> 1)

(* ---------- Flit-level crossing (wormhole testbench) ----------

   Hand-computed flit-by-flit schedules on a 2x2 mesh with unit
   timing: base_cycles = 2 (a worm's flits become ready two cycles
   after send), per_hop_cycles = 1 (a granted flit is usable
   downstream the next cycle), per_word_cycles = 1 with flit_words = 1
   (a flit holds its wire for one cycle, and every 32-bit word is its
   own flit, so a len-byte packet is (len + 16 + 3) / 4 flits). *)

let flit_router ?(vc_count = 1) ?rx_credits nodes =
  let engine = Engine.create () in
  let r =
    Router.create ~engine ~nodes
      ~config:
        { Router.default_config with
          Router.link_contention = true;
          crossing = `Flit;
          base_cycles = 2;
          per_hop_cycles = 1;
          per_word_cycles = 1;
          flit_words = 1;
          vc_count;
          rx_credits }
      ()
  in
  (engine, r)

let flit_stat r ~from_node ~to_node ~vc =
  match
    List.find_opt
      (fun (s : Router.flit_stat) ->
        s.Router.fl_from = from_node && s.Router.fl_to = to_node
        && s.Router.fl_vc = vc)
      (Router.flit_stats r)
  with
  | Some s -> s
  | None ->
      Alcotest.fail
        (Printf.sprintf "no flit FIFO (%d,%d) vc%d" from_node to_node vc)

(* One 5-flit worm 0 -> 3 (dimension order: (0,1) then (1,3)) on an
   idle mesh pipelines one flit per cycle. Hand schedule: all flits
   ready at t = 2; flit k crosses (0,1) at t = 2 + k, crosses (1,3)
   at t = 3 + k and ejects at node 3 at t = 4 + k; the tail (k = 4)
   completes the packet at exactly t = 8 = base + hops + 4. *)
let test_flit_pipelined_schedule () =
  let engine, r = flit_router 4 in
  let arrival = ref (-1) in
  Router.register r ~node_id:3 (fun _ -> arrival := Engine.now engine);
  Router.send r { (pkt ~len:4 0) with Packet.dst_node = 3 };
  let injected, _, _ = Router.flit_counts r in
  checki "20 bytes = 5 one-word flits" 5 injected;
  (* end of cycle 4: the head just ejected; flits 1 and 2 sit in the
     two link FIFOs, 3 and 4 are still queued at the source *)
  Engine.run_until engine 4;
  let injected, delivered, buffered = Router.flit_counts r in
  checki "head ejected at t=4" 1 delivered;
  checki "rest still in network" 4 buffered;
  checki "nothing re-injected" 5 injected;
  checkb "conservation holds mid-flight" true (Router.check_flits r = None);
  Engine.run_until_idle engine;
  checki "tail completes at base + hops + 4 trailing flits" 8 !arrival;
  let _, delivered, buffered = Router.flit_counts r in
  checki "all five flits ejected" 5 delivered;
  checki "network drained" 0 buffered;
  (* both wires carried the whole worm; the source wire double-buffers
     (a fresh flit lands each cycle as the previous one leaves for
     (1,3) in the same tick), the last wire drains eject-then-fill *)
  checki "grants on (0,1)" 5
    (flit_stat r ~from_node:0 ~to_node:1 ~vc:0).Router.fl_grants;
  checki "grants on (1,3)" 5
    (flit_stat r ~from_node:1 ~to_node:3 ~vc:0).Router.fl_grants;
  checki "peak occupancy on (0,1)" 2
    (flit_stat r ~from_node:0 ~to_node:1 ~vc:0).Router.fl_max_occ;
  checki "peak occupancy on (1,3)" 1
    (flit_stat r ~from_node:1 ~to_node:3 ~vc:0).Router.fl_max_occ;
  checkb "conservation holds when drained" true (Router.check_flits r = None)

(* Two worms sharing wire (1,3) interleave flit by flit on separate
   virtual channels. Worm A (0 -> 3) and worm B (1 -> 3), 4 flits
   each (len = 0), both sent at t = 0. B's head takes (1,3) on VC 0
   at t = 2 while A's head is still crossing (0,1); A's head then
   claims VC 1 and the wire's round-robin arbiter alternates
   B,A,B,A,... every cycle from t = 3 to t = 9. B's tail ejects at
   t = 9, A's one cycle later — neither worm waits for the other's
   tail, which a single channel would force. *)
let test_flit_vc_interleaving () =
  let engine, r = flit_router ~vc_count:2 4 in
  let arrivals = ref [] in
  Router.register r ~node_id:3 (fun p ->
      arrivals := (p.Packet.src_node, Engine.now engine) :: !arrivals);
  Router.send r { (pkt ~len:0 0) with Packet.dst_node = 3 };
  Router.send r { (pkt ~len:0 1) with Packet.src_node = 1; dst_node = 3 };
  Engine.run_until_idle engine;
  checki "B (1 -> 3) tail at t=9" 9 (List.assoc 1 !arrivals);
  checki "A (0 -> 3) tail at t=10" 10 (List.assoc 0 !arrivals);
  (* each worm rode its own virtual channel of the shared wire *)
  checki "B's four flits on VC 0" 4
    (flit_stat r ~from_node:1 ~to_node:3 ~vc:0).Router.fl_grants;
  checki "A's four flits on VC 1" 4
    (flit_stat r ~from_node:1 ~to_node:3 ~vc:1).Router.fl_grants;
  let injected, delivered, buffered = Router.flit_counts r in
  checki "8 flits injected" 8 injected;
  checki "8 flits delivered" 8 delivered;
  checki "none left behind" 0 buffered;
  checkb "conservation" true (Router.check_flits r = None)

(* A slow wire stretches a worm across two links. With Link_slow 4 on
   (1,3) and single-slot FIFOs, a 4-flit worm crosses (1,3) only
   every 4th cycle (t = 3, 7, 11, 15) while upstream flits sit
   credit-blocked in (0,1)'s slot — the worm holds buffers on both
   links at once, wormhole's defining hazard. Tail eject at t = 16
   returns every credit. *)
let test_flit_blocked_worm_credit_release () =
  let engine, r = flit_router ~rx_credits:1 4 in
  Router.set_link_fault r ~from_node:1 ~to_node:3 (Router.Link_slow 4);
  let arrival = ref (-1) in
  Router.register r ~node_id:3 (fun _ -> arrival := Engine.now engine);
  Router.send r { (pkt ~len:0 0) with Packet.dst_node = 3 };
  (* end of cycle 9: head (t=4) and first body (t=8) have ejected;
     the second body is parked in (0,1)'s only slot waiting for the
     slow wire, pinning its credit, so the tail cannot leave the
     source even though the (0,1) wire itself is idle *)
  Engine.run_until engine 9;
  let s01 = flit_stat r ~from_node:0 ~to_node:1 ~vc:0 in
  checki "slot on (0,1) occupied" 1 s01.Router.fl_occ;
  checki "its credit is pinned" 0 s01.Router.fl_credits;
  let injected, delivered, buffered = Router.flit_counts r in
  checki "two flits through" 2 delivered;
  checki "two still inside" 2 buffered;
  checki "injected" 4 injected;
  checkb "conservation under backpressure" true (Router.check_flits r = None);
  checkb "credit stall with the (0,1) wire idle counts as HOL" true
    (s01.Router.fl_hol_cycles > 0);
  Engine.run_until_idle engine;
  checki "tail ejects at t=16 (one (1,3) crossing per 4 cycles)" 16 !arrival;
  (* the tail's passage released every slot on both links *)
  List.iter
    (fun (s : Router.flit_stat) ->
      checki "drained FIFO empty" 0 s.Router.fl_occ;
      checki "credits restored" s.Router.fl_capacity s.Router.fl_credits)
    (Router.flit_stats r);
  let s13 = flit_stat r ~from_node:1 ~to_node:3 ~vc:0 in
  checkb "the slow wire stalled ready flits without HOL" true
    (s13.Router.fl_stall_cycles > 0 && s13.Router.fl_hol_cycles = 0);
  checkb "conservation when drained" true (Router.check_flits r = None)

(* ---------- System + NI end to end ---------- *)

let two_nodes () =
  let sys = System.create ~nodes:2 () in
  let snd = System.node sys 0 and rcv = System.node sys 1 in
  let sp = Scheduler.spawn snd.System.machine ~name:"s" in
  let rp = Scheduler.spawn rcv.System.machine ~name:"r" in
  (sys, snd, rcv, sp, rp)

let test_export_import_plumbing () =
  let sys, snd, rcv, sp, rp = two_nodes () in
  let export = System.export_buffer sys ~node:1 ~proc:rp ~pages:2 in
  checki "two frames" 2 (List.length export.System.frames);
  (* frames are pinned *)
  List.iter
    (fun f -> checkb "pinned" true (M.frame_is_pinned rcv.System.machine f))
    export.System.frames;
  System.import_export sys ~node:0 ~proc:sp ~first_index:3 export;
  (* NIPT entries installed *)
  let backend = Ni.backend snd.System.ni in
  (match Backend.decode backend ~index:3 with
  | Some e ->
      checki "points at receiver" 1 e.Backend.dst_node;
      checki "owned by the sender" sp.Udma_os.Proc.pid e.Backend.owner
  | None -> Alcotest.fail "NIPT entry missing");
  checki "two entries" 2 (Backend.valid_count backend);
  System.release_export sys export;
  List.iter
    (fun f -> checkb "unpinned" false (M.frame_is_pinned rcv.System.machine f))
    export.System.frames

let test_deliberate_update_send () =
  let sys, snd, rcv, sp, rp = two_nodes () in
  let export = System.export_buffer sys ~node:1 ~proc:rp ~pages:1 in
  System.import_export sys ~node:0 ~proc:sp ~first_index:0 export;
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  let data = pattern 1024 5 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf data;
  let cpu = Kernel.user_cpu snd.System.machine sp in
  (match
     Initiator.transfer cpu ~layout:snd.System.machine.M.layout
       ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr snd.System.machine ~index:0 ~offset:0))
       ~nbytes:1024 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "send failed: %a" Initiator.pp_error e);
  System.run_until_idle sys;
  checki "one packet sent" 1 (Ni.packets_sent snd.System.ni);
  checki "one packet received" 1 (Ni.packets_received rcv.System.ni);
  checki "bytes" 1024 (Ni.bytes_received rcv.System.ni);
  Alcotest.check Alcotest.bytes "payload in receiver memory" data
    (Kernel.read_user rcv.System.machine rp ~vaddr:export.System.vaddr ~len:1024)

let test_ni_alignment_rejected () =
  let sys, snd, _rcv, sp, rp = two_nodes () in
  ignore rp;
  let rcv = System.node sys 1 in
  let rp2 = List.hd rcv.System.machine.M.procs in
  let export = System.export_buffer sys ~node:1 ~proc:rp2 ~pages:1 in
  System.import_export sys ~node:0 ~proc:sp ~first_index:0 export;
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf (pattern 64 0);
  let cpu = Kernel.user_cpu snd.System.machine sp in
  (* misaligned count: the NI's validate hook reports a device error,
     which the initiator surfaces as a hard error *)
  match
    Initiator.transfer cpu ~layout:snd.System.machine.M.layout
      ~src:(Initiator.Memory buf)
      ~dst:(Initiator.Device (Kernel.vdev_addr snd.System.machine ~index:0 ~offset:0))
      ~nbytes:10 ()
  with
  | Error (Initiator.Hard_error st) ->
      checkb "device error bits" true (st.Status.device_error <> 0)
  | Ok _ -> Alcotest.fail "misaligned transfer accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Initiator.pp_error e

let test_ni_unconfigured_page_rejected () =
  let sys, snd, _rcv, sp, _rp = two_nodes () in
  ignore sys;
  (* map the device-proxy page but leave the NIPT empty *)
  (match
     Udma_os.Syscall.map_device_proxy snd.System.machine sp ~vdev_index:5
       ~pdev_index:5 ~writable:true
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "grant failed");
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf (pattern 64 0);
  let cpu = Kernel.user_cpu snd.System.machine sp in
  match
    Initiator.transfer cpu ~layout:snd.System.machine.M.layout
      ~src:(Initiator.Memory buf)
      ~dst:(Initiator.Device (Kernel.vdev_addr snd.System.machine ~index:5 ~offset:0))
      ~nbytes:64 ()
  with
  | Error (Initiator.Hard_error _) -> ()
  | Ok _ -> Alcotest.fail "send through empty NIPT entry accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Initiator.pp_error e

let test_receive_marks_dirty () =
  let sys, snd, rcv, sp, rp = two_nodes () in
  let export = System.export_buffer sys ~node:1 ~proc:rp ~pages:1 in
  System.import_export sys ~node:0 ~proc:sp ~first_index:0 export;
  let vpn = export.System.vaddr / Layout.page_size rcv.System.machine.M.layout in
  let pte =
    Option.get (Udma_mmu.Page_table.find rp.Udma_os.Proc.page_table vpn)
  in
  pte.Udma_mmu.Pte.dirty <- false;
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf (pattern 64 0);
  let cpu = Kernel.user_cpu snd.System.machine sp in
  (match
     Initiator.transfer cpu ~layout:snd.System.machine.M.layout
       ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr snd.System.machine ~index:0 ~offset:0))
       ~nbytes:64 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "send failed: %a" Initiator.pp_error e);
  System.run_until_idle sys;
  checkb "receive dirtied the page (I3 discipline)" true pte.Udma_mmu.Pte.dirty

(* ---------- Messaging ---------- *)

let test_messaging_roundtrip () =
  let sys, snd, _rcv, sp, rp = two_nodes () in
  let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:1 () in
  checki "capacity excludes flag" (4096 - 4) (Messaging.capacity ch);
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  let data = pattern 256 9 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf data;
  let cpu_s = Kernel.user_cpu snd.System.machine sp in
  let cpu_r = Kernel.user_cpu (System.node sys 1).System.machine rp in
  let seq =
    match Messaging.send ch cpu_s ~src_vaddr:buf ~nbytes:256 () with
    | Ok seq -> seq
    | Error e -> Alcotest.failf "send: %a" Messaging.pp_send_error e
  in
  checki "first message" 1 seq;
  (match Messaging.recv_wait ch cpu_r ~seq () with
  | Ok polls -> checkb "took some polls" true (polls >= 0)
  | Error msg -> Alcotest.fail msg);
  Alcotest.check Alcotest.bytes "payload" data
    (Bytes.sub (Messaging.read_payload ch ~len:256) 0 256)

let test_messaging_flag_after_payload () =
  (* the flag word must never be observable before the payload *)
  let sys, snd, _rcv, sp, rp = two_nodes () in
  let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:1 () in
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  let cpu_s = Kernel.user_cpu snd.System.machine sp in
  let cpu_r = Kernel.user_cpu (System.node sys 1).System.machine rp in
  for round = 1 to 10 do
    let data = pattern 512 round in
    Kernel.write_user snd.System.machine sp ~vaddr:buf data;
    let seq =
      match Messaging.send ch cpu_s ~src_vaddr:buf ~nbytes:512 () with
      | Ok seq -> seq
      | Error e -> Alcotest.failf "send: %a" Messaging.pp_send_error e
    in
    (match Messaging.recv_wait ch cpu_r ~seq () with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    Alcotest.check Alcotest.bytes
      (Printf.sprintf "round %d payload complete at flag time" round)
      data
      (Bytes.sub (Messaging.read_payload ch ~len:512) 0 512)
  done

let test_messaging_multi_page () =
  let sys, snd, _rcv, sp, rp = two_nodes () in
  let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:3 () in
  let nbytes = 2 * 4096 in
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:nbytes in
  let data = pattern nbytes 3 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf data;
  let cpu_s = Kernel.user_cpu snd.System.machine sp in
  let cpu_r = Kernel.user_cpu (System.node sys 1).System.machine rp in
  let seq =
    match Messaging.send ch cpu_s ~src_vaddr:buf ~nbytes () with
    | Ok seq -> seq
    | Error e -> Alcotest.failf "send: %a" Messaging.pp_send_error e
  in
  (match Messaging.recv_wait ch cpu_r ~seq () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.check Alcotest.bytes "multi-page payload" data
    (Messaging.read_payload ch ~len:nbytes)

let test_messaging_size_checks () =
  let sys, snd, _rcv, sp, rp = two_nodes () in
  ignore snd;
  let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:1 () in
  let cpu = Kernel.user_cpu (System.node sys 0).System.machine sp in
  checkb "oversized rejected" true
    (try ignore (Messaging.send ch cpu ~src_vaddr:4096 ~nbytes:8192 ()); false
     with Invalid_argument _ -> true);
  checkb "unaligned rejected" true
    (try ignore (Messaging.send ch cpu ~src_vaddr:4096 ~nbytes:10 ()); false
     with Invalid_argument _ -> true)

let test_queued_system_pipelined_send () =
  let config =
    { System.default_config with
      System.machine =
        { M.default_config with
          M.udma_mode = Some (Udma.Udma_engine.Queued { depth = 8 }) } }
  in
  let sys = System.create ~config ~nodes:2 () in
  let snd = System.node sys 0 in
  let sp = Scheduler.spawn snd.System.machine ~name:"s" in
  let rp = Scheduler.spawn (System.node sys 1).System.machine ~name:"r" in
  let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:4 () in
  let nbytes = 3 * 4096 in
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:nbytes in
  let data = pattern nbytes 7 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf data;
  let cpu_s = Kernel.user_cpu snd.System.machine sp in
  let cpu_r = Kernel.user_cpu (System.node sys 1).System.machine rp in
  let seq =
    match Messaging.send_pipelined ch cpu_s ~src_vaddr:buf ~nbytes () with
    | Ok seq -> seq
    | Error e -> Alcotest.failf "send: %a" Messaging.pp_send_error e
  in
  (match Messaging.recv_wait ch cpu_r ~seq () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  check Alcotest.bytes "pipelined multi-page payload" data
    (Messaging.read_payload ch ~len:nbytes)

let test_pipelined_beats_blocking () =
  let run pipelined =
    let config =
      { System.default_config with
        System.machine =
          { M.default_config with
            M.udma_mode = Some (Udma.Udma_engine.Queued { depth = 8 }) } }
    in
    let sys = System.create ~config ~nodes:2 () in
    let snd = System.node sys 0 in
    let sp = Scheduler.spawn snd.System.machine ~name:"s" in
    let rp = Scheduler.spawn (System.node sys 1).System.machine ~name:"r" in
    let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:5 () in
    let nbytes = 4 * 4096 in
    let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:nbytes in
    Kernel.write_user snd.System.machine sp ~vaddr:buf (pattern nbytes 1);
    let cpu = Kernel.user_cpu snd.System.machine sp in
    let send = if pipelined then Messaging.send_pipelined else Messaging.send in
    (* warm *)
    ignore (send ch cpu ~src_vaddr:buf ~nbytes ());
    System.run_until_idle sys;
    let t0 = Engine.now (System.engine sys) in
    (match send ch cpu ~src_vaddr:buf ~nbytes () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "send: %a" Messaging.pp_send_error e);
    let dt = Engine.now (System.engine sys) - t0 in
    System.run_until_idle sys;
    dt
  in
  let blocking = run false and pipelined = run true in
  checkb
    (Printf.sprintf "pipelined (%d) < blocking (%d)" pipelined blocking)
    true (pipelined < blocking)

let test_nine_node_corner_to_corner () =
  (* 3x3 mesh: corner-to-corner traffic pays 4 hops and still arrives *)
  let sys = System.create ~nodes:9 () in
  let p0 = Scheduler.spawn (System.node sys 0).System.machine ~name:"p0" in
  let p8 = Scheduler.spawn (System.node sys 8).System.machine ~name:"p8" in
  checki "4 hops" 4 (Router.hops (System.router sys) ~src:0 ~dst:8);
  let ch = Messaging.connect sys ~sender:(0, p0) ~receiver:(8, p8) ~pages:1 () in
  let near = Scheduler.spawn (System.node sys 1).System.machine ~name:"p1" in
  let ch_near =
    Messaging.connect sys ~sender:(0, p0) ~receiver:(1, near) ~first_index:4
      ~pages:1 ()
  in
  let m0 = (System.node sys 0).System.machine in
  let buf = Kernel.alloc_buffer m0 p0 ~bytes:4096 in
  Kernel.write_user m0 p0 ~vaddr:buf (pattern 512 3);
  let cpu0 = Kernel.user_cpu m0 p0 in
  let cpu8 = Kernel.user_cpu (System.node sys 8).System.machine p8 in
  let cpu1 = Kernel.user_cpu (System.node sys 1).System.machine near in
  let time_send ch cpu_r =
    let t0 = Engine.now (System.engine sys) in
    let seq =
      match Messaging.send ch cpu0 ~src_vaddr:buf ~nbytes:512 () with
      | Ok seq -> seq
      | Error e -> Alcotest.failf "send: %a" Messaging.pp_send_error e
    in
    (match Messaging.recv_wait ch cpu_r ~seq () with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    let dt = Engine.now (System.engine sys) - t0 in
    System.run_until_idle sys;
    dt
  in
  let far = time_send ch cpu8 in
  let nearby = time_send ch_near cpu1 in
  checkb
    (Printf.sprintf "more hops cost more (far %d vs near %d)" far nearby)
    true (far > nearby);
  check Alcotest.bytes "far payload intact" (pattern 512 3)
    (Bytes.sub (Messaging.read_payload ch ~len:512) 0 512)

let test_four_node_all_pairs () =
  let sys = System.create ~nodes:4 () in
  let procs =
    Array.init 4 (fun i ->
        Scheduler.spawn (System.node sys i).System.machine
          ~name:(Printf.sprintf "p%d" i))
  in
  let cpus =
    Array.init 4 (fun i ->
        Kernel.user_cpu (System.node sys i).System.machine procs.(i))
  in
  (* one channel per ordered pair, each with its own NIPT slice *)
  let idx = ref 0 in
  let chans = Hashtbl.create 16 in
  for s = 0 to 3 do
    for r = 0 to 3 do
      if s <> r then begin
        Hashtbl.replace chans (s, r)
          (Messaging.connect sys ~sender:(s, procs.(s)) ~receiver:(r, procs.(r))
             ~first_index:!idx ~pages:1 ());
        incr idx
      end
    done
  done;
  (* every pair sends a distinct message; all must arrive intact *)
  for s = 0 to 3 do
    for r = 0 to 3 do
      if s <> r then begin
        let m = (System.node sys s).System.machine in
        let buf = Kernel.alloc_buffer m procs.(s) ~bytes:4096 in
        let data = pattern 128 ((s * 4) + r) in
        Kernel.write_user m procs.(s) ~vaddr:buf data;
        let ch = Hashtbl.find chans (s, r) in
        let seq =
          match Messaging.send ch cpus.(s) ~src_vaddr:buf ~nbytes:128 () with
          | Ok seq -> seq
          | Error e -> Alcotest.failf "send %d->%d: %a" s r Messaging.pp_send_error e
        in
        match Messaging.recv_wait ch cpus.(r) ~seq () with
        | Ok _ ->
            Alcotest.check Alcotest.bytes
              (Printf.sprintf "payload %d->%d" s r)
              data
              (Bytes.sub (Messaging.read_payload ch ~len:128) 0 128)
        | Error msg -> Alcotest.fail msg
      end
    done
  done;
  System.run_until_idle sys

(* ---------- Collectives ---------- *)

module Collective = Udma_shrimp.Collective

let group_of n =
  let sys = System.create ~nodes:n () in
  let members =
    List.init n (fun i ->
        (i, Scheduler.spawn (System.node sys i).System.machine
              ~name:(Printf.sprintf "rank%d" i)))
  in
  (sys, Collective.create_group sys ~members ())

let test_collective_barrier () =
  let _sys, g = group_of 4 in
  checki "size" 4 (Collective.group_size g);
  for round = 1 to 3 do
    List.iter (fun r -> Collective.barrier g ~rank:r) [ 2; 0; 3; 1 ];
    checki (Printf.sprintf "round %d completed" round) round
      (Collective.barriers_completed g)
  done

let test_collective_barrier_double_arrival () =
  let _sys, g = group_of 2 in
  Collective.barrier g ~rank:1;
  checkb "double arrival rejected" true
    (try Collective.barrier g ~rank:1; false with Invalid_argument _ -> true)

let test_collective_broadcast () =
  (* 4 nodes: 3 leaves a partial mesh row and is rejected by Router *)
  let sys, g = group_of 4 in
  let root_m = (System.node sys 0).System.machine in
  let root_p = List.hd root_m.M.procs in
  let buf = Kernel.alloc_buffer root_m root_p ~bytes:4096 in
  let data = pattern 512 17 in
  Kernel.write_user root_m root_p ~vaddr:buf data;
  Collective.broadcast g ~root:0 ~src_vaddr:buf ~nbytes:512;
  for rank = 1 to 3 do
    let m = (System.node sys rank).System.machine in
    let p = List.hd m.M.procs in
    let v = Collective.bcast_recv_vaddr g ~root:0 ~rank in
    check Alcotest.bytes
      (Printf.sprintf "rank %d got the broadcast" rank)
      data
      (Kernel.read_user m p ~vaddr:v ~len:512)
  done

let test_collective_all_gather () =
  let sys, g = group_of 4 in
  let contributions =
    Array.init 4 (fun rank ->
        let m = (System.node sys rank).System.machine in
        let p = List.hd m.M.procs in
        let buf = Kernel.alloc_buffer m p ~bytes:4096 in
        Kernel.write_user m p ~vaddr:buf (pattern 256 (100 + rank));
        (buf, 256))
  in
  Collective.all_gather g ~contributions;
  for rank = 0 to 3 do
    for from_rank = 0 to 3 do
      if from_rank <> rank then begin
        let m = (System.node sys rank).System.machine in
        let p = List.hd m.M.procs in
        let v = Collective.gather_recv_vaddr g ~from_rank ~rank in
        check Alcotest.bytes
          (Printf.sprintf "rank %d has rank %d's data" rank from_rank)
          (pattern 256 (100 + from_rank))
          (Kernel.read_user m p ~vaddr:v ~len:256)
      end
    done
  done

(* ---------- Automatic update (§9) ---------- *)

module Auto_update = Udma_shrimp.Auto_update

let auto_rig () =
  let sys, snd, rcv, sp, rp = two_nodes () in
  let export = System.export_buffer sys ~node:1 ~proc:rp ~pages:1 in
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  (* make the page resident and dirty so plain stores work *)
  Kernel.write_user snd.System.machine sp ~vaddr:buf (Bytes.make 4096 '\000');
  System.auto_bind sys ~node:0 ~proc:sp ~vaddr:buf export;
  (sys, snd, rcv, sp, rp, export, buf)

let test_auto_update_propagates_word () =
  let sys, snd, rcv, sp, rp, export, buf = auto_rig () in
  ignore rcv;
  let cpu = Kernel.user_cpu snd.System.machine sp in
  cpu.Udma.Initiator.store ~vaddr:(buf + 64) 0xBEEFl;
  (* the combining window must elapse before the update is launched *)
  System.run_until_idle sys;
  checki "one update packet" 1 (Auto_update.updates_sent snd.System.auto);
  let got =
    Kernel.read_user (System.node sys 1).System.machine rp
      ~vaddr:(export.System.vaddr + 64) ~len:4
  in
  Alcotest.check Alcotest.int32 "word arrived at same offset" 0xBEEFl
    (Bytes.get_int32_le got 0)

let test_auto_update_combines_contiguous () =
  let sys, snd, _rcv, sp, rp, export, buf = auto_rig () in
  let cpu = Kernel.user_cpu snd.System.machine sp in
  (* eight contiguous words: one combined packet *)
  for w = 0 to 7 do
    cpu.Udma.Initiator.store ~vaddr:(buf + 128 + (w * 4)) (Int32.of_int w)
  done;
  System.run_until_idle sys;
  checki "single combined packet" 1 (Auto_update.updates_sent snd.System.auto);
  checki "seven merged words" 7 (Auto_update.words_combined snd.System.auto);
  let got =
    Kernel.read_user (System.node sys 1).System.machine rp
      ~vaddr:(export.System.vaddr + 128) ~len:32
  in
  for w = 0 to 7 do
    checki (Printf.sprintf "word %d" w) w
      (Int32.to_int (Bytes.get_int32_le got (w * 4)))
  done

let test_auto_update_discontiguous_flushes () =
  let sys, snd, _rcv, sp, _rp, _export, buf = auto_rig () in
  let cpu = Kernel.user_cpu snd.System.machine sp in
  cpu.Udma.Initiator.store ~vaddr:(buf + 0) 1l;
  cpu.Udma.Initiator.store ~vaddr:(buf + 512) 2l;
  cpu.Udma.Initiator.store ~vaddr:(buf + 1024) 3l;
  System.run_until_idle sys;
  checki "three separate packets" 3 (Auto_update.updates_sent snd.System.auto)

let test_auto_update_unbind_stops () =
  let sys, snd, _rcv, sp, rp, export, buf = auto_rig () in
  let cpu = Kernel.user_cpu snd.System.machine sp in
  cpu.Udma.Initiator.store ~vaddr:buf 7l;
  let frame =
    Option.get
      (Vm.frame_of_vpn snd.System.machine sp
         ~vpn:(buf / Layout.page_size snd.System.machine.M.layout))
  in
  (* unbind flushes the pending run, then silences the page *)
  Auto_update.unbind snd.System.auto ~frame;
  cpu.Udma.Initiator.store ~vaddr:(buf + 256) 8l;
  System.run_until_idle sys;
  checki "only the pre-unbind update" 1 (Auto_update.updates_sent snd.System.auto);
  let got =
    Kernel.read_user (System.node sys 1).System.machine rp
      ~vaddr:export.System.vaddr ~len:4
  in
  Alcotest.check Alcotest.int32 "flushed word arrived" 7l (Bytes.get_int32_le got 0)

let test_auto_update_ignores_other_pages () =
  let sys, snd, _rcv, sp, _rp, _export, _buf = auto_rig () in
  let other = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  Kernel.write_user snd.System.machine sp ~vaddr:other (Bytes.make 8 'x');
  let cpu = Kernel.user_cpu snd.System.machine sp in
  cpu.Udma.Initiator.store ~vaddr:other 9l;
  System.run_until_idle sys;
  checki "unbound page not propagated" 0 (Auto_update.updates_sent snd.System.auto)

let () =
  Alcotest.run "udma_shrimp"
    [
      ("nipt", [ Alcotest.test_case "basic" `Quick test_nipt_basic ]);
      ("fifo", [ Alcotest.test_case "order + capacity" `Quick test_fifo_order_and_capacity ]);
      ( "router",
        [
          Alcotest.test_case "mesh hops" `Quick test_router_mesh_hops;
          Alcotest.test_case "delivery + latency" `Quick
            test_router_delivery_and_latency;
          Alcotest.test_case "unregistered sink" `Quick test_router_unregistered_sink;
          Alcotest.test_case "contention on idle links = closed form" `Quick
            test_router_contention_idle_closed_form;
          Alcotest.test_case "contention queues a shared link" `Quick
            test_router_contention_queues_shared_link;
          Alcotest.test_case "partial-row node counts rejected" `Quick
            test_router_rejects_partial_row;
          Alcotest.test_case "VCs degenerate to FIFO timing" `Quick
            test_router_vcs_degenerate_timing;
          Alcotest.test_case "credit gate + NACK retry" `Quick
            test_router_credit_gate;
          Alcotest.test_case "adaptive idle = dimension order" `Quick
            test_adaptive_idle_matches_dimension_order;
          Alcotest.test_case "adaptive routes around a dead link" `Quick
            test_adaptive_routes_around_dead_link;
          Alcotest.test_case "dimension order crosses a dead link" `Quick
            test_dimension_order_crosses_dead_link;
          Alcotest.test_case "slow link stretches occupancy" `Quick
            test_slow_link_stretches_occupancy;
          Alcotest.test_case "adaptive prefers the less busy link" `Quick
            test_adaptive_prefers_less_busy_link;
          Alcotest.test_case "set_link_fault validates" `Quick
            test_set_link_fault_validates;
          Alcotest.test_case "flit: pipelined hand schedule" `Quick
            test_flit_pipelined_schedule;
          Alcotest.test_case "flit: 2-VC interleaving hand schedule" `Quick
            test_flit_vc_interleaving;
          Alcotest.test_case "flit: blocked worm + credit release" `Quick
            test_flit_blocked_worm_credit_release;
        ] );
      ( "system",
        [
          Alcotest.test_case "export/import plumbing" `Quick
            test_export_import_plumbing;
          Alcotest.test_case "deliberate update send" `Quick
            test_deliberate_update_send;
          Alcotest.test_case "alignment rejected" `Quick test_ni_alignment_rejected;
          Alcotest.test_case "unconfigured NIPT page rejected" `Quick
            test_ni_unconfigured_page_rejected;
          Alcotest.test_case "receive marks dirty" `Quick test_receive_marks_dirty;
        ] );
      ( "collective",
        [
          Alcotest.test_case "barrier" `Quick test_collective_barrier;
          Alcotest.test_case "barrier double arrival" `Quick
            test_collective_barrier_double_arrival;
          Alcotest.test_case "broadcast" `Quick test_collective_broadcast;
          Alcotest.test_case "all-gather" `Quick test_collective_all_gather;
        ] );
      ( "auto-update",
        [
          Alcotest.test_case "word propagates" `Quick test_auto_update_propagates_word;
          Alcotest.test_case "contiguous writes combine" `Quick
            test_auto_update_combines_contiguous;
          Alcotest.test_case "discontiguous writes flush" `Quick
            test_auto_update_discontiguous_flushes;
          Alcotest.test_case "unbind stops propagation" `Quick
            test_auto_update_unbind_stops;
          Alcotest.test_case "other pages ignored" `Quick
            test_auto_update_ignores_other_pages;
        ] );
      ( "messaging",
        [
          Alcotest.test_case "roundtrip" `Quick test_messaging_roundtrip;
          Alcotest.test_case "flag after payload" `Quick
            test_messaging_flag_after_payload;
          Alcotest.test_case "multi-page message" `Quick test_messaging_multi_page;
          Alcotest.test_case "size checks" `Quick test_messaging_size_checks;
          Alcotest.test_case "queued system pipelined send" `Quick
            test_queued_system_pipelined_send;
          Alcotest.test_case "pipelined beats blocking" `Quick
            test_pipelined_beats_blocking;
          Alcotest.test_case "9-node corner to corner" `Quick
            test_nine_node_corner_to_corner;
          Alcotest.test_case "4-node all pairs" `Quick test_four_node_all_pairs;
        ] );
    ]
