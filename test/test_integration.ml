(* Cross-module integration tests: protection/isolation, experiment
   anchors from the paper, and mixed workloads. *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Device = Udma_dma.Device
module Status = Udma.Status
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module M = Udma_os.Machine
module Proc = Udma_os.Proc
module Vm = Udma_os.Vm
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Runner = Udma_workloads.Runner
module System = Udma_shrimp.System
module Messaging = Udma_shrimp.Messaging

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let pattern n seed = Bytes.init n (fun i -> Char.chr ((i + seed) land 0xff))

(* ---------- protection / isolation ---------- *)

let test_ungranted_device_proxy_faults () =
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let port, _ = Device.buffer "d" ~size:65536 in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  let evil = Scheduler.spawn m ~name:"evil" in
  let cpu = Kernel.user_cpu m evil in
  (* no grant: storing to device proxy must segfault, not reach the
     hardware *)
  checkb "segfaults" true
    (try
       cpu.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 64l;
       false
     with Vm.Segfault _ -> true);
  checki "hardware untouched" 0 (Udma_engine.counters udma).Udma_engine.initiations

let test_readonly_grant_blocks_sends () =
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let port, _ = Device.buffer "d" ~size:65536 in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  let p = Scheduler.spawn m ~name:"p" in
  (* read-only device grant (§4: "whether the permission is read-only") *)
  (match Syscall.map_device_proxy m p ~vdev_index:0 ~pdev_index:0 ~writable:false with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "grant failed");
  let cpu = Kernel.user_cpu m p in
  checkb "store blocked" true
    (try
       cpu.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 64l;
       false
     with Vm.Segfault _ -> true)

let test_process_cannot_name_others_memory () =
  (* p2 cannot use p1's memory as a transfer source: the proxy of an
     address p2 has no mapping for faults as illegal (§6 case 3) *)
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let port, store = Device.buffer "d" ~size:65536 in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  let p1 = Scheduler.spawn m ~name:"victim" in
  let p2 = Scheduler.spawn m ~name:"evil" in
  ignore (Syscall.map_device_proxy m p2 ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let secret = Kernel.alloc_buffer m p1 ~bytes:4096 in
  Kernel.write_user m p1 ~vaddr:secret (Bytes.of_string "top-secret-data!");
  let cpu2 = Kernel.user_cpu m p2 in
  (* p2 issues the STORE (legal: it owns the device grant) and then
     tries to LOAD from the proxy of p1's buffer address; in p2's
     address space that page is unmapped, so the proxy fault is an
     illegal access *)
  cpu2.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 16l;
  checkb "cross-process source segfaults" true
    (try
       ignore (cpu2.Initiator.load ~vaddr:(Layout.proxy_of m.M.layout secret));
       false
     with Vm.Segfault _ -> true);
  Engine.run_until_idle m.M.engine;
  checkb "no secret bytes leaked" true
    (Bytes.to_string (Bytes.sub store 0 16) <> "top-secret-data!")

let test_same_address_different_processes () =
  (* the same virtual address in two processes names different frames,
     and UDMA follows the mappings, not the numbers *)
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let port, store = Device.buffer "d" ~size:65536 in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  let p1 = Scheduler.spawn m ~name:"p1" in
  let p2 = Scheduler.spawn m ~name:"p2" in
  ignore (Syscall.map_device_proxy m p1 ~vdev_index:0 ~pdev_index:0 ~writable:true);
  ignore (Syscall.map_device_proxy m p2 ~vdev_index:1 ~pdev_index:1 ~writable:true);
  let b1 = Kernel.alloc_buffer m p1 ~bytes:4096 in
  let b2 = Kernel.alloc_buffer m p2 ~bytes:4096 in
  checki "same virtual address" b1 b2;
  Kernel.write_user m p1 ~vaddr:b1 (Bytes.of_string "process-one-data");
  Kernel.write_user m p2 ~vaddr:b2 (Bytes.of_string "process-two-data");
  let send proc dev_page =
    let cpu = Kernel.user_cpu m proc in
    match
      Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory b1)
        ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:dev_page ~offset:0))
        ~nbytes:16 ()
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "send: %a" Initiator.pp_error e
  in
  send p1 0;
  send p2 1;
  Engine.run_until_idle m.M.engine;
  Alcotest.check Alcotest.string "p1's bytes via p1's grant" "process-one-data"
    (Bytes.to_string (Bytes.sub store 0 16));
  Alcotest.check Alcotest.string "p2's bytes via p2's grant" "process-two-data"
    (Bytes.to_string (Bytes.sub store 4096 16))

(* ---------- experiment anchors from the paper ---------- *)

let test_figure8_anchors () =
  let points = Runner.figure8 ~messages:16 () in
  let pct size =
    match List.find_opt (fun p -> p.Runner.size = size) points with
    | Some p -> p.Runner.pct_of_max
    | None -> Alcotest.failf "size %d missing" size
  in
  (* §8: "exceeds 50% of the maximum measured at a message size of
     only 512 bytes" *)
  checkb
    (Printf.sprintf "512B >= 50%% (got %.1f)" (pct 512))
    true
    (pct 512 >= 50.0);
  (* §8: a single page achieves 94%; we require the same ballpark *)
  checkb
    (Printf.sprintf "4K in [90,100] (got %.1f)" (pct 4096))
    true
    (pct 4096 >= 90.0);
  (* the dip after one page *)
  checkb
    (Printf.sprintf "dip after 4K (%.1f -> %.1f)" (pct 4096) (pct 4608))
    true
    (pct 4608 < pct 4096);
  (* max sustained for messages exceeding 8K *)
  checkb
    (Printf.sprintf "8K near max (got %.1f)" (pct 8192))
    true
    (pct 8192 >= 95.0);
  (* monotone rise below a page *)
  checkb "monotone rise to 4K" true (pct 64 < pct 512 && pct 512 < pct 4096)

let test_initiation_cost_anchor () =
  let rows = Runner.initiation_costs () in
  let find label =
    match List.find_opt (fun (r : Runner.cost_row) -> r.Runner.label = label) rows with
    | Some r -> r
    | None -> Alcotest.failf "row %s missing" label
  in
  let udma = find "UDMA initiation (2 refs + check)" in
  (* §8: about 2.8 microseconds *)
  checkb
    (Printf.sprintf "2.8us (got %.2f)" udma.Runner.us)
    true
    (udma.Runner.us > 2.2 && udma.Runner.us < 3.4);
  let trad = find "traditional 4 KB transfer (pin)" in
  checkb "traditional is 10x+ the UDMA initiation" true
    (trad.Runner.cycles > 10 * udma.Runner.cycles)

let test_hippi_anchor () =
  let rows = Runner.hippi_motivation () in
  let at block =
    match List.find_opt (fun r -> r.Runner.block = block) rows with
    | Some r -> r.Runner.mbytes_per_s
    | None -> Alcotest.failf "block %d missing" block
  in
  (* §1: "With a data block size of 1 Kbyte, the transfer rate achieved
     is only 2.7 MByte/sec, which is less than 2% of the raw hardware
     bandwidth" (we land within a factor ~1.5 and under 4%) *)
  checkb
    (Printf.sprintf "1KB ~2.7MB/s (got %.2f)" (at 1024))
    true
    (at 1024 > 1.8 && at 1024 < 4.0);
  (* §1: 80 MB/s requires large blocks *)
  checkb "64KB still below 80MB/s" true (at 65536 < 80.0);
  checkb "256KB reaches ~80MB/s" true (at 262144 >= 78.0)

let test_crossover_anchor () =
  let rows = Runner.pio_crossover ~sizes:[ 16; 4096 ] ~trials:3 () in
  let at size = List.find (fun r -> r.Runner.xsize = size) rows in
  (* §9: FIFO interfaces win small messages, DMA wins long ones *)
  checkb "PIO wins at 16B" true
    ((at 16).Runner.pio_cycles < (at 16).Runner.udma_cycles);
  checkb "UDMA wins at 4KB by a lot" true
    ((at 4096).Runner.pio_cycles > 5.0 *. (at 4096).Runner.udma_cycles)

let test_queueing_anchor () =
  let rows = Runner.queueing ~total_sizes:[ 65536 ] ~depths:[ 4 ] () in
  match rows with
  | [ r ] ->
      let _, queued = List.hd r.Runner.queued_cycles in
      checkb "queueing beats basic for multi-page transfers" true
        (queued < r.Runner.basic_cycles)
  | _ -> Alcotest.fail "expected one row"

let test_atomicity_never_violates () =
  let rows = Runner.atomicity ~probs_pct:[ 0; 25; 50 ] ~transfers:100 () in
  List.iter
    (fun r ->
      checki
        (Printf.sprintf "violations at %d%%" r.Runner.preempt_pct)
        0 r.Runner.violations;
      if r.Runner.preempt_pct = 0 then
        checki "no retries without preemption" 0 r.Runner.retries
      else checkb "preemption causes retries" true (r.Runner.retries > 0))
    rows

let test_i3_policy_anchor () =
  let rows = Runner.i3_policies ~transfers:32 ~pages:4 () in
  match rows with
  | [ upgrade; union ] ->
      checkb "union takes fewer proxy faults" true
        (union.Runner.proxy_faults < upgrade.Runner.proxy_faults);
      checki "union takes no upgrades" 0 union.Runner.upgrades;
      checkb "upgrade policy re-faults after every clean" true
        (upgrade.Runner.upgrades >= 28)
  | _ -> Alcotest.fail "expected two rows"

let test_update_strategy_anchor () =
  let rows = Runner.update_strategies () in
  let find w = List.find (fun r -> r.Runner.workload = w) rows in
  let scattered = find "32 scattered single-word updates" in
  (* automatic update has no initiation cost: scattered word updates
     are at least an order of magnitude cheaper on the sending CPU *)
  checkb "automatic wins scattered updates" true
    (scattered.Runner.automatic_cycles * 10 < scattered.Runner.deliberate_cycles);
  let bulk = find "one 4 KB sequential region" in
  (* deliberate update ships bulk data in far fewer packets *)
  checkb "deliberate wins bulk packet count" true
    (bulk.Runner.deliberate_packets * 10 <= bulk.Runner.automatic_packets)

(* ---------- mixed workloads ---------- *)

let test_messaging_under_memory_pressure () =
  (* sender keeps messaging while a hog forces paging on its node;
     every message must still arrive intact (I2/I4 at work) *)
  let config = { M.default_config with M.mem_pages = 32 } in
  let sys =
    System.create
      ~config:{ System.default_config with System.machine = config }
      ~nodes:2 ()
  in
  let snd = System.node sys 0 in
  let sp = Scheduler.spawn snd.System.machine ~name:"s" in
  let rp = Scheduler.spawn (System.node sys 1).System.machine ~name:"r" in
  let hog = Scheduler.spawn snd.System.machine ~name:"hog" in
  let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:1 () in
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  let cpu_s = Kernel.user_cpu snd.System.machine sp in
  let cpu_r = Kernel.user_cpu (System.node sys 1).System.machine rp in
  for round = 1 to 12 do
    let data = pattern 1024 round in
    Scheduler.switch_to snd.System.machine sp;
    Kernel.write_user snd.System.machine sp ~vaddr:buf data;
    (* memory pressure between sends *)
    ignore (Kernel.alloc_buffer snd.System.machine hog ~bytes:(3 * 4096));
    let seq =
      match Messaging.send ch cpu_s ~src_vaddr:buf ~nbytes:1024 () with
      | Ok seq -> seq
      | Error e -> Alcotest.failf "send %d: %a" round Messaging.pp_send_error e
    in
    (match Messaging.recv_wait ch cpu_r ~seq () with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    Alcotest.check Alcotest.bytes
      (Printf.sprintf "round %d intact" round)
      data
      (Bytes.sub (Messaging.read_payload ch ~len:1024) 0 1024)
  done;
  checkb "paging actually happened" true
    (Udma_obs.Metrics.get snd.System.machine.M.metrics "vm.evictions" > 0)

let test_concurrent_channels_interleave () =
  (* two senders on one node share the UDMA engine; the basic hardware
     serialises them but both make progress *)
  let sys = System.create ~nodes:2 () in
  let snd = System.node sys 0 in
  let s1 = Scheduler.spawn snd.System.machine ~name:"s1" in
  let s2 = Scheduler.spawn snd.System.machine ~name:"s2" in
  let rp = Scheduler.spawn (System.node sys 1).System.machine ~name:"r" in
  let ch1 =
    Messaging.connect sys ~sender:(0, s1) ~receiver:(1, rp) ~first_index:0
      ~pages:1 ()
  in
  let ch2 =
    Messaging.connect sys ~sender:(0, s2) ~receiver:(1, rp) ~first_index:1
      ~pages:1 ()
  in
  let b1 = Kernel.alloc_buffer snd.System.machine s1 ~bytes:4096 in
  let b2 = Kernel.alloc_buffer snd.System.machine s2 ~bytes:4096 in
  Kernel.write_user snd.System.machine s1 ~vaddr:b1 (pattern 256 1);
  Kernel.write_user snd.System.machine s2 ~vaddr:b2 (pattern 256 2);
  let c1 = Kernel.user_cpu snd.System.machine s1 in
  let c2 = Kernel.user_cpu snd.System.machine s2 in
  let cr = Kernel.user_cpu (System.node sys 1).System.machine rp in
  for _ = 1 to 5 do
    let q1 =
      match Messaging.send ch1 c1 ~src_vaddr:b1 ~nbytes:256 () with
      | Ok q -> q
      | Error e -> Alcotest.failf "s1: %a" Messaging.pp_send_error e
    in
    let q2 =
      match Messaging.send ch2 c2 ~src_vaddr:b2 ~nbytes:256 () with
      | Ok q -> q
      | Error e -> Alcotest.failf "s2: %a" Messaging.pp_send_error e
    in
    (match Messaging.recv_wait ch1 cr ~seq:q1 () with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    match Messaging.recv_wait ch2 cr ~seq:q2 () with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg
  done;
  Alcotest.check Alcotest.bytes "ch1 payload" (pattern 256 1)
    (Bytes.sub (Messaging.read_payload ch1 ~len:256) 0 256);
  Alcotest.check Alcotest.bytes "ch2 payload" (pattern 256 2)
    (Bytes.sub (Messaging.read_payload ch2 ~len:256) 0 256)

(* ---------- several devices behind one UDMA engine ---------- *)

let test_multi_device_node () =
  (* one engine serves a frame buffer, a disk and a buffer device at
     disjoint device-proxy ranges; one process drives all three *)
  let module Frame_buffer = Udma_devices.Frame_buffer in
  let module Disk = Udma_devices.Disk in
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let fb = Frame_buffer.create ~width:64 ~height:32 in
  let disk = Disk.create () in
  let port, store = Device.buffer "aux" ~size:(4 * 4096) in
  (* layout: fb pages [0..1], disk pages [8..23], buffer pages [32..35] *)
  let fb_pages = Frame_buffer.pages fb ~page_size:4096 in
  Udma_engine.attach_device udma ~base_page:0 ~pages:fb_pages
    ~port:(Frame_buffer.port fb) ();
  Udma_engine.attach_device udma ~base_page:8 ~pages:16 ~port:(Disk.port disk) ();
  Udma_engine.attach_device udma ~base_page:32 ~pages:4 ~port ();
  (* overlapping attachment is rejected *)
  checkb "overlap rejected" true
    (try
       Udma_engine.attach_device udma ~base_page:9 ~pages:1 ~port ();
       false
     with Invalid_argument _ -> true);
  let proc = Scheduler.spawn m ~name:"driver" in
  List.iter
    (fun i ->
      ignore (Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i ~writable:true))
    [ 0; 8; 32 ];
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let cpu = Kernel.user_cpu m proc in
  let send ~dev_index ~seed ~nbytes =
    Kernel.write_user m proc ~vaddr:buf (pattern nbytes seed);
    match
      Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
        ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:dev_index ~offset:0))
        ~nbytes ()
    with
    | Ok _ -> Engine.run_until_idle m.M.engine
    | Error e -> Alcotest.failf "dev %d: %a" dev_index Initiator.pp_error e
  in
  send ~dev_index:0 ~seed:1 ~nbytes:256;   (* 64 pixels *)
  send ~dev_index:8 ~seed:2 ~nbytes:4096;  (* disk block 0 *)
  send ~dev_index:32 ~seed:3 ~nbytes:512;  (* aux buffer *)
  Alcotest.check Alcotest.bytes "pixels" (pattern 256 1)
    (Bytes.sub (Frame_buffer.row fb ~y:0) 0 256);
  Alcotest.check Alcotest.bytes "disk block" (pattern 4096 2) (Disk.read_block disk 0);
  Alcotest.check Alcotest.bytes "aux" (pattern 512 3) (Bytes.sub store 0 512);
  (* access to a device-proxy page bound to nothing reports a device
     error, even though the grant exists *)
  ignore (Syscall.map_device_proxy m proc ~vdev_index:40 ~pdev_index:40 ~writable:true);
  Kernel.write_user m proc ~vaddr:buf (pattern 64 9);
  match
    Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
      ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:40 ~offset:0))
      ~nbytes:64 ()
  with
  | Error (Initiator.Hard_error st) ->
      checkb "unbound page reports device error" true
        (st.Udma.Status.device_error <> 0)
  | Ok _ -> Alcotest.fail "transfer to an unbound device page succeeded"
  | Error e -> Alcotest.failf "unexpected: %a" Initiator.pp_error e

let () =
  Alcotest.run "udma_integration"
    [
      ( "protection",
        [
          Alcotest.test_case "ungranted device proxy faults" `Quick
            test_ungranted_device_proxy_faults;
          Alcotest.test_case "read-only grant blocks sends" `Quick
            test_readonly_grant_blocks_sends;
          Alcotest.test_case "cannot name another's memory" `Quick
            test_process_cannot_name_others_memory;
          Alcotest.test_case "same vaddr, different processes" `Quick
            test_same_address_different_processes;
        ] );
      ( "paper-anchors",
        [
          Alcotest.test_case "Figure 8 shape" `Slow test_figure8_anchors;
          Alcotest.test_case "2.8us initiation" `Quick test_initiation_cost_anchor;
          Alcotest.test_case "HIPPI motivation" `Quick test_hippi_anchor;
          Alcotest.test_case "PIO crossover" `Slow test_crossover_anchor;
          Alcotest.test_case "queueing wins" `Slow test_queueing_anchor;
          Alcotest.test_case "I1 never violated" `Slow test_atomicity_never_violates;
          Alcotest.test_case "I3 policies trade faults" `Quick
            test_i3_policy_anchor;
          Alcotest.test_case "update strategies crossover" `Quick
            test_update_strategy_anchor;
        ] );
      ( "multi-device",
        [ Alcotest.test_case "three devices, one engine" `Quick test_multi_device_node ] );
      ( "mixed",
        [
          Alcotest.test_case "messaging under memory pressure" `Slow
            test_messaging_under_memory_pressure;
          Alcotest.test_case "concurrent channels" `Quick
            test_concurrent_channels_interleave;
        ] );
    ]
