(* Unit tests for the discrete-event simulation core. *)

module Eventq = Udma_sim.Eventq
module Engine = Udma_sim.Engine
module Stats = Udma_sim.Stats
module Rng = Udma_sim.Rng
module Trace = Udma_sim.Trace

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------- Eventq ---------- *)

let test_eventq_ordering () =
  let q = Eventq.create () in
  Eventq.push q ~time:30 "c";
  Eventq.push q ~time:10 "a";
  Eventq.push q ~time:20 "b";
  Alcotest.(check (option (pair int string))) "first" (Some (10, "a")) (Eventq.pop q);
  Alcotest.(check (option (pair int string))) "second" (Some (20, "b")) (Eventq.pop q);
  Alcotest.(check (option (pair int string))) "third" (Some (30, "c")) (Eventq.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (Eventq.pop q)

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  List.iter (fun s -> Eventq.push q ~time:5 s) [ "1"; "2"; "3"; "4" ];
  let order = List.init 4 (fun _ -> snd (Option.get (Eventq.pop q))) in
  Alcotest.(check (list string)) "insertion order on equal times"
    [ "1"; "2"; "3"; "4" ] order

let test_eventq_growth () =
  let q = Eventq.create () in
  for i = 999 downto 0 do
    Eventq.push q ~time:i i
  done;
  checki "length" 1000 (Eventq.length q);
  let rec drain last n =
    match Eventq.pop q with
    | None -> n
    | Some (t, v) ->
        checkb "monotone" true (t >= last);
        checki "payload matches time" t v;
        drain t (n + 1)
  in
  checki "drained all" 1000 (drain (-1) 0)

let test_eventq_negative_time () =
  let q = Eventq.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Eventq.push: negative time") (fun () ->
      Eventq.push q ~time:(-1) ())

let test_eventq_clear () =
  let q = Eventq.create () in
  Eventq.push q ~time:1 ();
  Eventq.push q ~time:2 ();
  Eventq.clear q;
  checkb "empty after clear" true (Eventq.is_empty q);
  checki "peek gone" 0 (match Eventq.peek_time q with None -> 0 | Some _ -> 1)

let test_eventq_peek () =
  let q = Eventq.create () in
  Alcotest.(check (option int)) "empty peek" None (Eventq.peek_time q);
  Eventq.push q ~time:42 "x";
  Alcotest.(check (option int)) "peek" (Some 42) (Eventq.peek_time q);
  checki "peek does not pop" 1 (Eventq.length q)

let test_eventq_key_order () =
  let q = Eventq.create () in
  Eventq.push q ~time:5 ~key:2 "k2";
  Eventq.push q ~time:5 ~key:0 "k0";
  Eventq.push q ~time:5 ~key:1 "k1";
  Eventq.push q ~time:5 ~key:0 "k0'";
  let order = List.init 4 (fun _ -> snd (Option.get (Eventq.pop q))) in
  Alcotest.(check (list string)) "key then insertion order on equal times"
    [ "k0"; "k0'"; "k1"; "k2" ] order

(* The retention regression: a popped (or cleared) event must not be
   kept alive by the vacated heap slot. Each payload is reachable only
   through the queued closure; once the closure leaves the queue and
   the returned value is dropped, a major GC has to collect it. Kept
   out-of-line so no stale stack slot of the caller roots the payload. *)
let[@inline never] push_tracked q time =
  let payload = Bytes.make 4096 'x' in
  let w = Weak.create 1 in
  Weak.set w 0 (Some payload);
  Eventq.push q ~time (fun () -> ignore (Bytes.length payload));
  w

let[@inline never] pop_and_drop q = ignore (Eventq.pop q)

let test_eventq_pop_releases () =
  let q = Eventq.create () in
  let w = push_tracked q 10 in
  (* a second event keeps the queue non-empty, so the popped slot is
     genuinely a vacated interior slot, not an emptied queue *)
  Eventq.push q ~time:20 (fun () -> ());
  pop_and_drop q;
  Gc.full_major ();
  Gc.full_major ();
  checkb "payload collectable once popped" false (Weak.check w 0);
  checki "other event still queued" 1 (Eventq.length q)

let test_eventq_clear_releases () =
  let q = Eventq.create () in
  let ws = List.init 3 (fun i -> push_tracked q (10 * (i + 1))) in
  Eventq.clear q;
  Gc.full_major ();
  Gc.full_major ();
  List.iteri
    (fun i w ->
      checkb (Printf.sprintf "payload %d collectable after clear" i) false
        (Weak.check w 0))
    ws

(* qcheck: an interleaved push/pop/clear trace agrees with a sorted-list
   reference model — global time order, and among equal (time, key) the
   push order (FIFO). *)
let qtest = QCheck_alcotest.to_alcotest

type eventq_op = Push of int * int | Pop | Clear

let eventq_model_prop =
  let open QCheck in
  let gen_op =
    Gen.(
      frequency
        [
          (6, map2 (fun t k -> Push (t, k)) (int_bound 20) (int_bound 3));
          (3, return Pop);
          (1, return Clear);
        ])
  in
  let print_op = function
    | Push (t, k) -> Printf.sprintf "push(t=%d,k=%d)" t k
    | Pop -> "pop"
    | Clear -> "clear"
  in
  let arb = make ~print:(Print.list print_op) Gen.(list_size (1 -- 60) gen_op) in
  Test.make ~count:500 ~name:"Eventq trace = sorted-list model" arb (fun ops ->
      let q = Eventq.create () in
      let model = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Push (t, k) ->
              let id = !next_id in
              incr next_id;
              Eventq.push q ~time:t ~key:k id;
              (* stable sort keeps push order among equal (time, key) *)
              model :=
                List.stable_sort
                  (fun (t1, k1, _) (t2, k2, _) -> compare (t1, k1) (t2, k2))
                  (!model @ [ (t, k, id) ])
          | Pop -> (
              match (Eventq.pop q, !model) with
              | None, [] -> ()
              | Some (t, id), (mt, _, mid) :: rest ->
                  if t <> mt || id <> mid then ok := false else model := rest
              | Some _, [] | None, _ :: _ -> ok := false)
          | Clear ->
              Eventq.clear q;
              model := [])
        ops;
      !ok && Eventq.length q = List.length !model)

(* ---------- Engine ---------- *)

let test_engine_advance () =
  let e = Engine.create () in
  checki "starts at 0" 0 (Engine.now e);
  Engine.advance e 100;
  checki "advanced" 100 (Engine.now e)

let test_engine_events_fire_in_window () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:50 (fun _ -> fired := 50 :: !fired);
  Engine.schedule e ~delay:150 (fun _ -> fired := 150 :: !fired);
  Engine.advance e 100;
  Alcotest.(check (list int)) "only due events" [ 50 ] !fired;
  Engine.advance e 100;
  Alcotest.(check (list int)) "the rest" [ 150; 50 ] !fired

let test_engine_event_clock () =
  let e = Engine.create () in
  let seen = ref (-1) in
  Engine.schedule e ~delay:30 (fun e -> seen := Engine.now e);
  Engine.advance e 100;
  checki "event sees its own timestamp" 30 !seen;
  checki "clock ends at horizon" 100 (Engine.now e)

let test_engine_cascading_events () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:10 (fun e ->
      log := ("a", Engine.now e) :: !log;
      Engine.schedule e ~delay:5 (fun e -> log := ("b", Engine.now e) :: !log));
  Engine.advance e 20;
  Alcotest.(check (list (pair string int)))
    "chained event fires inside the window"
    [ ("b", 15); ("a", 10) ]
    !log

let test_engine_schedule_at () =
  let e = Engine.create () in
  Engine.advance e 50;
  let fired = ref [] in
  Engine.schedule_at e ~time:100 (fun e -> fired := Engine.now e :: !fired);
  (* a time in the past clamps to now *)
  Engine.schedule_at e ~time:10 (fun e -> fired := Engine.now e :: !fired);
  Engine.run_until_idle e;
  Alcotest.(check (list int)) "absolute + clamped" [ 100; 50 ] !fired

let test_engine_run_until_idle () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain n _ =
    incr count;
    if n > 0 then Engine.schedule e ~delay:10 (chain (n - 1))
  in
  Engine.schedule e ~delay:10 (chain 4);
  Engine.run_until_idle e;
  checki "all fired" 5 !count;
  checki "clock at last event" 50 (Engine.now e)

let test_engine_wait_for () =
  let e = Engine.create () in
  let flag = ref false in
  Engine.schedule e ~delay:1000 (fun _ -> flag := true);
  let polls = Engine.wait_for e ~poll_cost:2 (fun () -> !flag) in
  checkb "condition met" true !flag;
  checkb "polled at least once" true (polls >= 1);
  checkb "clock advanced to the event" true (Engine.now e >= 1000)

let test_engine_wait_for_idle_failure () =
  let e = Engine.create () in
  Alcotest.check_raises "impossible condition"
    (Failure "Engine.wait_for: condition can never become true (idle)")
    (fun () -> ignore (Engine.wait_for e (fun () -> false)))

let test_engine_time_conversion () =
  let e = Engine.create ~mhz:100 () in
  Alcotest.(check (float 0.001)) "10 ns per cycle at 100 MHz" 10.0
    (Engine.ns_of_cycles e 1);
  Alcotest.(check (float 0.001)) "us" 1.0 (Engine.us_of_cycles e 100)

(* ---------- Stats ---------- *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 10;
  checki "a" 2 (Stats.get s "a");
  checki "b" 10 (Stats.get s "b");
  checki "absent" 0 (Stats.get s "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("a", 2); ("b", 10) ]
    (Stats.counters s)

let test_stats_summary () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.observe s "lat" (float_of_int i)
  done;
  match Stats.summarize s "lat" with
  | None -> Alcotest.fail "expected summary"
  | Some sum ->
      checki "count" 100 sum.Stats.count;
      Alcotest.(check (float 0.01)) "mean" 50.5 sum.Stats.mean;
      Alcotest.(check (float 0.01)) "min" 1.0 sum.Stats.min;
      Alcotest.(check (float 0.01)) "max" 100.0 sum.Stats.max;
      Alcotest.(check (float 0.01)) "p50" 50.0 sum.Stats.p50;
      Alcotest.(check (float 0.01)) "p95" 95.0 sum.Stats.p95;
      Alcotest.(check (float 0.01)) "p99" 99.0 sum.Stats.p99

let test_stats_empty_summary () =
  let s = Stats.create () in
  checkb "no data no summary" true (Stats.summarize s "none" = None)

let test_stats_dump () =
  let s = Stats.create () in
  Stats.incr s "hits";
  Stats.observe s "lat" 4.0;
  Stats.observe s "lat" 8.0;
  let dump = Stats.dump s in
  (* the dump is standalone JSON (parsed with the obs parser) *)
  match Udma_obs.Json.parse dump with
  | Error msg -> Alcotest.failf "dump is not JSON (%s): %s" msg dump
  | Ok doc ->
      checkb "hits counter" true
        (Udma_obs.Json.path [ "counters"; "hits" ] doc
        = Some (Udma_obs.Json.Int 1));
      checkb "series count" true
        (Udma_obs.Json.path [ "series"; "lat"; "count" ] doc
        = Some (Udma_obs.Json.Int 2))

let test_stats_reset () =
  let s = Stats.create () in
  Stats.incr s "x";
  Stats.observe s "y" 1.0;
  Stats.reset s;
  checki "counter gone" 0 (Stats.get s "x");
  checkb "series gone" true (Stats.observations s "y" = [])

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let sa = List.init 50 (fun _ -> Rng.int a 1000) in
  let sb = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" sa sb

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 100 do
    let f = Rng.float r 2.5 in
    checkb "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split_independence () =
  let r = Rng.create 11 in
  let r2 = Rng.split r in
  let s1 = List.init 20 (fun _ -> Rng.int r 1_000_000) in
  let s2 = List.init 20 (fun _ -> Rng.int r2 1_000_000) in
  checkb "streams differ" true (s1 <> s2)

let test_rng_shuffle_is_permutation () =
  let r = Rng.create 5 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_rng_pick () =
  let r = Rng.create 1 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    checkb "picked element" true (Array.mem (Rng.pick r arr) arr)
  done

(* ---------- Trace ---------- *)

let test_trace_basic () =
  let t = Trace.create ~enabled:true () in
  Trace.note t ~time:1 Trace.Event.Sim "hello";
  Trace.record t ~time:2 Trace.Event.Udma
    (Trace.Event.Udma_start { src = 0x100; dst = 0x200; nbytes = 64 });
  match Trace.events t with
  | [ e1; e2 ] ->
      checki "first time" 1 e1.Trace.Event.time;
      checkb "note payload" true
        (e1.Trace.Event.payload = Trace.Event.Note "hello");
      checki "second time" 2 e2.Trace.Event.time;
      checkb "typed payload" true
        (match e2.Trace.Event.payload with
        | Trace.Event.Udma_start { nbytes; _ } -> nbytes = 64
        | _ -> false)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_trace_disabled () =
  let t = Trace.create ~enabled:false () in
  Trace.note t ~time:1 Trace.Event.Sim "x";
  Trace.record t ~time:2 Trace.Event.Vm
    (Trace.Event.Fault { vaddr = 0x1000; kind = "page" });
  checki "nothing recorded" 0 (List.length (Trace.events t))

let test_trace_matching () =
  let t = Trace.create ~enabled:true () in
  Trace.note t ~time:1 Trace.Event.Udma "start";
  Trace.note t ~time:2 Trace.Event.Sched "switch";
  Trace.note t ~time:3 Trace.Event.Udma "inval";
  checki "matching" 2
    (List.length
       (Trace.matching t (fun e -> e.Trace.Event.subsystem = Trace.Event.Udma)));
  checki "no match" 0
    (List.length
       (Trace.matching t (fun e -> e.Trace.Event.subsystem = Trace.Event.Ni)))

let test_trace_capacity () =
  let t = Trace.create ~capacity:10 ~enabled:true () in
  for i = 1 to 100 do
    Trace.note t ~time:i Trace.Event.Sim "e"
  done;
  checkb "bounded" true (List.length (Trace.events t) <= 10)

let test_trace_sinks () =
  (* sinks fire even when the ring is disabled *)
  let t = Trace.create ~enabled:false () in
  let sink, count = Trace.Event.counting_sink () in
  Trace.add_sink t sink;
  Trace.note t ~time:1 Trace.Event.Sim "a";
  Trace.note t ~time:2 Trace.Event.Sim "b";
  checki "sink saw both" 2 (count ());
  checki "ring still empty" 0 (List.length (Trace.events t))

(* ---------- Rng.int_unbiased / substream ---------- *)

(* The legacy biased stream is pinned: every committed anchor was
   produced through Rng.int, so its outputs must never move. *)
let test_rng_int_stream_pinned () =
  let r = Rng.create 42 in
  let got = List.init 8 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int))
    "Rng.int stream @ seed 42"
    [ 853; 72; 964; 941; 812; 265; 231; 977 ]
    got

let test_rng_unbiased_stream_pinned () =
  let r = Rng.create 7 in
  let got = List.init 8 (fun _ -> Rng.int_unbiased r 1000) in
  Alcotest.(check (list int))
    "Rng.int_unbiased stream @ seed 7"
    [ 621; 951; 336; 50; 918; 76; 949; 295 ]
    got

let test_rng_unbiased_bounds () =
  let r = Rng.create 1 in
  (* a power-of-two bound (divides 2^62: the no-tail path), tiny bounds,
     and a bound over half the raw range (the heavy-rejection path) *)
  List.iter
    (fun bound ->
      for _ = 1 to 200 do
        let v = Rng.int_unbiased r bound in
        checkb "in range" true (v >= 0 && v < bound)
      done)
    [ 1; 2; 3; 64; 1000; (max_int / 2) + 3 ];
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int_unbiased: bound must be positive") (fun () ->
      ignore (Rng.int_unbiased r 0))

let test_rng_unbiased_uniform () =
  let r = Rng.create 99 in
  let buckets = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let v = Rng.int_unbiased r 3 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      checkb
        (Printf.sprintf "bucket %d near n/3 (got %d)" i c)
        true
        (abs (c - (n / 3)) < n / 30))
    buckets

let test_rng_substream () =
  let a = Rng.substream 42 0 and a' = Rng.substream 42 0 in
  let b = Rng.substream 42 1 in
  let take r = List.init 6 (fun _ -> Rng.int_unbiased r 1_000_000) in
  Alcotest.(check (list int)) "same (seed, index) = same stream" (take a')
    (take (Rng.substream 42 0));
  checkb "distinct indices decorrelate" true (take a <> take b);
  (* partition independence: the stream for index i never depends on
     which other indices exist or in what order they are created *)
  let direct = take (Rng.substream 7 5) in
  let _ = Rng.substream 7 0 and _ = Rng.substream 7 9 in
  Alcotest.(check (list int)) "creation order irrelevant" direct
    (take (Rng.substream 7 5))

(* ---------- Shard: conservative sharded kernel ---------- *)

module Shard = Udma_sim.Shard

(* A token ring over the shards: each arrival records (shard, time) into
   the owning shard's own trace cell (single-writer, so safe under any
   domain packing) and forwards the token with a cross-shard delay. *)
let run_ring ~domains ~shards ~hops =
  let k = Shard.create ~lookahead:5 ~shards () in
  let traces = Array.init shards (fun _ -> ref []) in
  let rec arrive hop s () =
    traces.(s) := (hop, Shard.now k ~shard:s) :: !(traces.(s));
    if hop < hops then
      let d = (s + 1) mod shards in
      Shard.post k ~src:s ~dst:d ~delay:(5 + (hop mod 3)) (arrive (hop + 1) d)
  in
  Shard.schedule k ~shard:0 ~delay:1 (arrive 0 0);
  Shard.run ~domains k;
  ( Array.map (fun r -> List.rev !r) traces,
    Shard.events_executed k,
    Shard.messages_posted k,
    Shard.windows_run k )

let test_shard_ring_sequential () =
  let traces, events, posts, windows = run_ring ~domains:1 ~shards:4 ~hops:10 in
  checki "one event per hop" 11 events;
  checki "every forward crosses a shard boundary" 10 posts;
  checkb "windows advanced" true (windows > 0);
  Alcotest.(check (list (pair int int)))
    "shard 0 sees hops 0, 4, 8"
    [ (0, 1); (4, 24); (8, 48) ]
    traces.(0)

let test_shard_domain_invariance () =
  let base = run_ring ~domains:1 ~shards:4 ~hops:25 in
  List.iter
    (fun domains ->
      let got = run_ring ~domains ~shards:4 ~hops:25 in
      checkb
        (Printf.sprintf "domains=%d identical to sequential" domains)
        true (got = base))
    [ 2; 3; 4; 7 ]

let test_shard_post_below_lookahead () =
  let k = Shard.create ~lookahead:8 ~shards:2 () in
  Alcotest.check_raises "unsound cross-shard delay"
    (Invalid_argument
       "Shard.post: cross-shard delay 3 below lookahead 8 (the conservative \
        window would be unsound)") (fun () ->
      Shard.post k ~src:0 ~dst:1 ~delay:3 (fun () -> ()));
  (* the same delay within a shard is fine: no window boundary crossed *)
  Shard.post k ~src:0 ~dst:0 ~delay:3 (fun () -> ());
  checki "local short post queued" 1 (Shard.pending_events k)

let test_shard_until () =
  let k = Shard.create ~lookahead:10 ~shards:2 () in
  let fired = ref [] in
  List.iter
    (fun t -> Shard.schedule_at k ~shard:0 ~time:t (fun () -> fired := t :: !fired))
    [ 3; 12; 40 ];
  Shard.run ~until:20 k;
  Alcotest.(check (list int)) "only events before the cut" [ 12; 3 ] !fired;
  checki "later event still pending" 1 (Shard.pending_events k);
  Shard.run k;
  Alcotest.(check (list int)) "resume drains the rest" [ 40; 12; 3 ] !fired

let () =
  Alcotest.run "udma_sim"
    [
      ( "eventq",
        [
          Alcotest.test_case "ordering" `Quick test_eventq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "key order" `Quick test_eventq_key_order;
          Alcotest.test_case "growth + heap order" `Quick test_eventq_growth;
          Alcotest.test_case "negative time" `Quick test_eventq_negative_time;
          Alcotest.test_case "pop releases payload" `Quick
            test_eventq_pop_releases;
          Alcotest.test_case "clear releases payloads" `Quick
            test_eventq_clear_releases;
          qtest eventq_model_prop;
          Alcotest.test_case "clear" `Quick test_eventq_clear;
          Alcotest.test_case "peek" `Quick test_eventq_peek;
        ] );
      ( "engine",
        [
          Alcotest.test_case "advance" `Quick test_engine_advance;
          Alcotest.test_case "window firing" `Quick test_engine_events_fire_in_window;
          Alcotest.test_case "event timestamps" `Quick test_engine_event_clock;
          Alcotest.test_case "cascading events" `Quick test_engine_cascading_events;
          Alcotest.test_case "schedule_at" `Quick test_engine_schedule_at;
          Alcotest.test_case "run until idle" `Quick test_engine_run_until_idle;
          Alcotest.test_case "wait_for" `Quick test_engine_wait_for;
          Alcotest.test_case "wait_for idle failure" `Quick
            test_engine_wait_for_idle_failure;
          Alcotest.test_case "time conversion" `Quick test_engine_time_conversion;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty summary" `Quick test_stats_empty_summary;
          Alcotest.test_case "json dump" `Quick test_stats_dump;
          Alcotest.test_case "reset" `Quick test_stats_reset;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_is_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "legacy int stream pinned" `Quick
            test_rng_int_stream_pinned;
          Alcotest.test_case "unbiased stream pinned" `Quick
            test_rng_unbiased_stream_pinned;
          Alcotest.test_case "unbiased bounds" `Quick test_rng_unbiased_bounds;
          Alcotest.test_case "unbiased uniform" `Quick test_rng_unbiased_uniform;
          Alcotest.test_case "substream" `Quick test_rng_substream;
        ] );
      ( "shard",
        [
          Alcotest.test_case "token ring (sequential)" `Quick
            test_shard_ring_sequential;
          Alcotest.test_case "domain-count invariance" `Quick
            test_shard_domain_invariance;
          Alcotest.test_case "lookahead soundness check" `Quick
            test_shard_post_below_lookahead;
          Alcotest.test_case "until + resume" `Quick test_shard_until;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "matching" `Quick test_trace_matching;
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
          Alcotest.test_case "sinks" `Quick test_trace_sinks;
        ] );
    ]
