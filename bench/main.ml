(* The benchmark binary regenerates every table and figure of the
   paper's evaluation (the E1–E10 index in DESIGN.md §4). By default it
   prints the paper-style series and then runs one Bechamel
   micro-benchmark per experiment measuring the wall-clock cost of the
   corresponding simulation harness. With --json it instead writes the
   whole run as one udma-bench/1 document (BENCH_udma.json), and with
   --check FILE it diffs the paper anchors (E1 %-of-max at 512 B and
   4 KB, E2 initiation cycles, E11 saturation knee, E12 per-policy
   transpose knees, E13 hotspot knees at 1 and 4 VCs, E14 per-backend
   initiation p50 at 8 tenants and p99 at 256, E15 contiguous and
   SG-256 bytes-per-cycle, E16 KV and RPC request p99 at load 0.8,
   E18 flit-vs-analytic HOL p99 delta at 1 and 4 VCs)
   against a previously
   committed baseline, failing on >±2 % drift — that is the CI
   regression gate. *)

module Runner = Udma_workloads.Runner
module Report = Udma_obs.Report
module Json = Udma_obs.Json

open Bechamel
open Toolkit

(* Small parameterisations so each Bechamel sample is a fraction of a
   second; the printed paper series above use the full parameters. *)
let bech_tests =
  [
    Test.make ~name:"e1_figure8_point"
      (Staged.stage (fun () ->
           ignore (Runner.figure8 ~sizes:[ 512; 4096 ] ~messages:4 ())));
    Test.make ~name:"e2_initiation"
      (Staged.stage (fun () -> ignore (Runner.initiation_costs ())));
    Test.make ~name:"e3_hippi"
      (Staged.stage (fun () ->
           ignore (Runner.hippi_motivation ~blocks:[ 1024; 65536 ] ())));
    Test.make ~name:"e4_pio_crossover"
      (Staged.stage (fun () ->
           ignore (Runner.pio_crossover ~sizes:[ 64; 1024 ] ~trials:2 ())));
    Test.make ~name:"e5_queueing"
      (Staged.stage (fun () ->
           ignore (Runner.queueing ~total_sizes:[ 16384 ] ~depths:[ 4 ] ())));
    Test.make ~name:"e6_atomicity"
      (Staged.stage (fun () ->
           ignore (Runner.atomicity ~probs_pct:[ 10 ] ~transfers:20 ())));
    Test.make ~name:"e7_pinning"
      (Staged.stage (fun () -> ignore (Runner.pinning_vs_i4 ())));
    Test.make ~name:"e8_proxy_fault"
      (Staged.stage (fun () -> ignore (Runner.proxy_fault_costs ())));
    Test.make ~name:"e9_i3_policy"
      (Staged.stage (fun () ->
           ignore (Runner.i3_policies ~transfers:8 ~pages:2 ())));
    Test.make ~name:"e10_updates"
      (Staged.stage (fun () -> ignore (Runner.update_strategies ())));
    Test.make ~name:"e11_traffic_point"
      (Staged.stage (fun () ->
           ignore
             (Runner.report_saturation ~loads:[ 0.5 ] ~nodes:4
                ~warmup_cycles:500 ~window_cycles:4_000 ())));
    Test.make ~name:"e12_adaptive_point"
      (Staged.stage (fun () ->
           ignore
             (Runner.report_adaptive ~loads:[ 0.5 ] ~nodes:4
                ~patterns:[ Udma_traffic.Pattern.Transpose ]
                ~warmup_cycles:500 ~window_cycles:4_000 ())));
    Test.make ~name:"e13_hotspot_point"
      (Staged.stage (fun () ->
           ignore
             (Runner.report_hotspot ~loads:[ 0.5 ] ~nodes:4 ~pcts:[ 50 ]
                ~vc_counts:[ 2 ] ~warmup_cycles:500 ~window_cycles:4_000 ())));
    Test.make ~name:"e14_tenants_point"
      (Staged.stage (fun () ->
           ignore (Runner.report_tenants ~tenant_counts:[ 64 ] ~ops:2_000 ())));
    Test.make ~name:"e15_shapes_point"
      (Staged.stage (fun () ->
           ignore
             (Runner.transfer_shapes
                ~cases:[ Runner.Shape_contig; Runner.Shape_sg 16 ]
                ())));
    Test.make ~name:"e16_apps_point"
      (Staged.stage (fun () ->
           ignore
             (Runner.report_kv ~loads:[ 0.5 ] ~nodes:4
                ~window_cycles:10_000 ())));
    Test.make ~name:"e18_flit_point"
      (Staged.stage (fun () ->
           ignore
             (Runner.report_flit ~nodes:4 ~vc_counts:[ 2 ]
                ~warmup_cycles:500 ~window_cycles:4_000 ())));
  ]

let run_bechamel () =
  Printf.printf "\n=== Bechamel micro-benchmarks (host wall-clock per harness run) ===\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"udma" bech_tests)
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-28s %16s\n" "harness" "ns/run";
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %16.0f\n" name ns)
    rows

(* ------------------------------------------------------------------ *)
(* anchors: the quantitative claims CI guards against drift            *)
(* ------------------------------------------------------------------ *)

let report_value reports ~id pick =
  match List.find_opt (fun (r : Report.t) -> r.Report.id = id) reports with
  | None -> None
  | Some r -> pick r.Report.rows

let row_num field row =
  match List.assoc_opt field row with
  | Some (Report.Int i) -> Some (float_of_int i)
  | Some (Report.Float f) -> Some f
  | _ -> None

let row_where field value rows pick_field =
  List.find_map
    (fun row ->
      match row_num field row with
      | Some v when v = value -> row_num pick_field row
      | _ -> None)
    rows

let row_labelled label rows pick_field =
  List.find_map
    (fun row ->
      match List.assoc_opt "label" row with
      | Some (Report.Str l) when l = label -> row_num pick_field row
      | _ -> None)
    rows

let report_meta_num reports ~id field =
  match List.find_opt (fun (r : Report.t) -> r.Report.id = id) reports with
  | None -> None
  | Some r -> row_num field r.Report.meta

let row_with_str field value rows pick_field =
  List.find_map
    (fun row ->
      match List.assoc_opt field row with
      | Some (Report.Str l) when l = value -> row_num pick_field row
      | _ -> None)
    rows

(* (name, value) for the checked anchors: the paper's 51 % of peak at
   512 B, 96 % at 4 KB (Figure 8), the ~200-cycle two-reference
   initiation (§8), the traffic sweep's saturation knee + its
   lightest-load mean latency (E11, guards the contention model), and
   the per-policy transpose knees (E12, guards adaptive routing). *)
let anchors_of_reports reports =
  let e1 pick =
    report_value reports ~id:"e1_figure8" (fun rows ->
        row_where "size" pick rows "pct_of_max")
  in
  let e2 =
    report_value reports ~id:"e2_initiation" (fun rows ->
        row_labelled "UDMA initiation (2 refs + check)" rows "cycles")
  in
  let e11_base =
    report_value reports ~id:"e11_saturation" (fun rows ->
        row_where "load" 0.2 rows "mean_latency")
  in
  let e12 field =
    report_value reports ~id:"e12_adaptive" (fun rows ->
        row_with_str "pattern" "transpose" rows field)
  in
  let e13 vcs =
    report_value reports ~id:"e13_hotspot" (fun rows ->
        List.find_map
          (fun row ->
            match (row_num "hot_pct" row, row_num "vcs" row) with
            | Some p, Some v when p = 50.0 && v = vcs ->
                row_num "knee" row
            | _ -> None)
          rows)
  in
  let e14 backend tenants field =
    report_value reports ~id:"e14_tenants" (fun rows ->
        List.find_map
          (fun row ->
            match (List.assoc_opt "backend" row, row_num "tenants" row) with
            | Some (Report.Str b), Some t when b = backend && t = tenants ->
                row_num field row
            | _ -> None)
          rows)
  in
  let e15 shape field =
    report_value reports ~id:"e15_shapes" (fun rows ->
        row_with_str "shape" shape rows field)
  in
  let e16 id load =
    report_value reports ~id (fun rows -> row_where "load" load rows "p99")
  in
  let e18 vcs =
    report_value reports ~id:"e18_flit" (fun rows ->
        row_where "vcs" vcs rows "hol_delta")
  in
  [
    ("e1.pct_of_max@512B", e1 512.0);
    ("e1.pct_of_max@4KB", e1 4096.0);
    ("e2.initiation_cycles", e2);
    ("e11.knee_load", report_meta_num reports ~id:"e11_saturation" "knee_load");
    ("e11.mean_latency@0.2", e11_base);
    ("e12.knee_dim@transpose", e12 "knee_dim");
    ("e12.knee_adaptive@transpose", e12 "knee_adaptive");
    ("e13.knee@hot50.vcs1", e13 1.0);
    ("e13.knee@hot50.vcs4", e13 4.0);
    ("e14.p50@proxy.t8", e14 "proxy" 8.0 "p50");
    ("e14.p99@proxy.t256", e14 "proxy" 256.0 "p99");
    ("e14.p50@iommu.t8", e14 "iommu" 8.0 "p50");
    ("e14.p99@iommu.t256", e14 "iommu" 256.0 "p99");
    ("e14.p50@capability.t8", e14 "capability" 8.0 "p50");
    ("e14.p99@capability.t256", e14 "capability" 256.0 "p99");
    ("e15.bpc@contig.basic", e15 "contig" "basic_bpc");
    ("e15.bpc@sg256.basic", e15 "sg256" "basic_bpc");
    ("e15.pct@sg256.basic", e15 "sg256" "basic_pct");
    ("e16.kv_p99@0.8", e16 "e16_kv" 0.8);
    ("e16.rpc_p99@0.8", e16 "e16_rpc" 0.8);
    ("e18.hol_delta@vcs1", e18 1.0);
    ("e18.hol_delta@vcs4", e18 4.0);
  ]

let json_rows_of_experiment doc ~id =
  match Json.member "experiments" doc with
  | Some exps ->
      List.find_map
        (fun exp ->
          match Json.member "id" exp with
          | Some (Json.Str i) when i = id -> Some (Json.to_list (Option.value ~default:Json.Null (Json.member "rows" exp)))
          | _ -> None)
        (Json.to_list exps)
  | None -> None

let json_row_num field row =
  Option.bind (Json.member field row) Json.number

let json_meta_num doc ~id field =
  match Json.member "experiments" doc with
  | Some exps ->
      List.find_map
        (fun exp ->
          match Json.member "id" exp with
          | Some (Json.Str i) when i = id ->
              Option.bind (Json.member "meta" exp) (fun meta ->
                  Option.bind (Json.member field meta) Json.number)
          | _ -> None)
        (Json.to_list exps)
  | None -> None

let anchors_of_baseline doc =
  let e1 pick =
    Option.bind (json_rows_of_experiment doc ~id:"e1_figure8") (fun rows ->
        List.find_map
          (fun row ->
            match json_row_num "size" row with
            | Some v when v = pick -> json_row_num "pct_of_max" row
            | _ -> None)
          rows)
  in
  let e2 =
    Option.bind (json_rows_of_experiment doc ~id:"e2_initiation") (fun rows ->
        List.find_map
          (fun row ->
            match Option.bind (Json.member "label" row) Json.string_ with
            | Some l when l = "UDMA initiation (2 refs + check)" ->
                json_row_num "cycles" row
            | _ -> None)
          rows)
  in
  let e11_base =
    Option.bind (json_rows_of_experiment doc ~id:"e11_saturation") (fun rows ->
        List.find_map
          (fun row ->
            match json_row_num "load" row with
            | Some v when v = 0.2 -> json_row_num "mean_latency" row
            | _ -> None)
          rows)
  in
  let e12 field =
    Option.bind (json_rows_of_experiment doc ~id:"e12_adaptive") (fun rows ->
        List.find_map
          (fun row ->
            match Option.bind (Json.member "pattern" row) Json.string_ with
            | Some "transpose" -> json_row_num field row
            | _ -> None)
          rows)
  in
  let e13 vcs =
    Option.bind (json_rows_of_experiment doc ~id:"e13_hotspot") (fun rows ->
        List.find_map
          (fun row ->
            match (json_row_num "hot_pct" row, json_row_num "vcs" row) with
            | Some p, Some v when p = 50.0 && v = vcs ->
                json_row_num "knee" row
            | _ -> None)
          rows)
  in
  let e14 backend tenants field =
    Option.bind (json_rows_of_experiment doc ~id:"e14_tenants") (fun rows ->
        List.find_map
          (fun row ->
            match
              ( Option.bind (Json.member "backend" row) Json.string_,
                json_row_num "tenants" row )
            with
            | Some b, Some t when b = backend && t = tenants ->
                json_row_num field row
            | _ -> None)
          rows)
  in
  let e15 shape field =
    Option.bind (json_rows_of_experiment doc ~id:"e15_shapes") (fun rows ->
        List.find_map
          (fun row ->
            match Option.bind (Json.member "shape" row) Json.string_ with
            | Some s when s = shape -> json_row_num field row
            | _ -> None)
          rows)
  in
  let e16 id load =
    Option.bind (json_rows_of_experiment doc ~id) (fun rows ->
        List.find_map
          (fun row ->
            match json_row_num "load" row with
            | Some v when v = load -> json_row_num "p99" row
            | _ -> None)
          rows)
  in
  let e18 vcs =
    Option.bind (json_rows_of_experiment doc ~id:"e18_flit") (fun rows ->
        List.find_map
          (fun row ->
            match json_row_num "vcs" row with
            | Some v when v = vcs -> json_row_num "hol_delta" row
            | _ -> None)
          rows)
  in
  [
    ("e1.pct_of_max@512B", e1 512.0);
    ("e1.pct_of_max@4KB", e1 4096.0);
    ("e2.initiation_cycles", e2);
    ("e11.knee_load", json_meta_num doc ~id:"e11_saturation" "knee_load");
    ("e11.mean_latency@0.2", e11_base);
    ("e12.knee_dim@transpose", e12 "knee_dim");
    ("e12.knee_adaptive@transpose", e12 "knee_adaptive");
    ("e13.knee@hot50.vcs1", e13 1.0);
    ("e13.knee@hot50.vcs4", e13 4.0);
    ("e14.p50@proxy.t8", e14 "proxy" 8.0 "p50");
    ("e14.p99@proxy.t256", e14 "proxy" 256.0 "p99");
    ("e14.p50@iommu.t8", e14 "iommu" 8.0 "p50");
    ("e14.p99@iommu.t256", e14 "iommu" 256.0 "p99");
    ("e14.p50@capability.t8", e14 "capability" 8.0 "p50");
    ("e14.p99@capability.t256", e14 "capability" 256.0 "p99");
    ("e15.bpc@contig.basic", e15 "contig" "basic_bpc");
    ("e15.bpc@sg256.basic", e15 "sg256" "basic_bpc");
    ("e15.pct@sg256.basic", e15 "sg256" "basic_pct");
    ("e16.kv_p99@0.8", e16 "e16_kv" 0.8);
    ("e16.rpc_p99@0.8", e16 "e16_rpc" 0.8);
    ("e18.hol_delta@vcs1", e18 1.0);
    ("e18.hol_delta@vcs4", e18 4.0);
  ]

let check_anchors reports ~baseline_file =
  let doc =
    let ic = open_in baseline_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.parse s with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "check: cannot parse %s: %s\n" baseline_file msg;
        exit 2
  in
  let current = anchors_of_reports reports in
  let baseline = anchors_of_baseline doc in
  let tolerance = 0.02 in
  Printf.printf "\n=== anchor check vs %s (tolerance +/-%.0f%%) ===\n"
    baseline_file (100.0 *. tolerance);
  let failed = ref false in
  List.iter
    (fun (name, cur) ->
      match (cur, List.assoc_opt name baseline) with
      | Some cur, Some (Some base) ->
          let drift =
            if base = 0.0 then Float.abs cur
            else Float.abs (cur -. base) /. Float.abs base
          in
          let ok = drift <= tolerance in
          if not ok then failed := true;
          Printf.printf "%-24s baseline %10.2f  current %10.2f  drift %5.1f%%  %s\n"
            name base cur (100.0 *. drift)
            (if ok then "ok" else "DRIFT")
      | _, (None | Some None) ->
          failed := true;
          Printf.printf "%-24s missing from baseline file\n" name
      | None, _ ->
          failed := true;
          Printf.printf "%-24s missing from current run\n" name)
    current;
  if !failed then begin
    Printf.printf
      "anchor check FAILED: regenerate the baseline (see EXPERIMENTS.md) if \
       the change is intended.\n";
    exit 1
  end
  else Printf.printf "anchor check passed.\n"

(* ------------------------------------------------------------------ *)
(* bench sim: raw sharded-engine throughput (BENCH_sim.json)           *)
(* ------------------------------------------------------------------ *)

(* One fixed open-loop workload per domain count. Two kinds of numbers
   come out: the kernel counters and the traffic result, which are
   deterministic (identical for every domain count and every run on
   every host), and the wall-clock events/sec, which is whatever the
   host gives. The --check gate therefore compares the deterministic
   fields EXACTLY (0.0%% tolerance — this is the engine-determinism
   regression gate) and prints the rates purely for information. *)

module Shard_gen = Udma_traffic.Shard_gen
module Load_gen = Udma_traffic.Load_gen

let sim_deterministic_fields =
  [ "events"; "windows"; "cross_posts"; "shards"; "injected"; "delivered";
    "mean_latency"; "p99" ]

let sim_report ~nodes ~load ~window ~seed ~domains_list =
  let send_cycles = Load_gen.calibrate ~msg_bytes:256 () in
  let cfg =
    {
      Load_gen.default_config with
      Load_gen.nodes;
      window_cycles = window;
      arrival =
        Udma_traffic.Arrival.Poisson
          { per_kcycle = load *. 1000.0 /. float_of_int send_cycles };
      rx_credits = None;
      seed;
    }
  in
  let rows =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let result, ks = Shard_gen.run_stats ~domains ~send_cycles cfg in
        let wall = Unix.gettimeofday () -. t0 in
        let evps =
          if wall > 0.0 then float_of_int ks.Shard_gen.events /. wall else 0.0
        in
        [
          ("domains", Report.Int domains);
          ("events", Report.Int ks.Shard_gen.events);
          ("windows", Report.Int ks.Shard_gen.windows);
          ("cross_posts", Report.Int ks.Shard_gen.cross_posts);
          ("shards", Report.Int ks.Shard_gen.shards);
          ("injected", Report.Int result.Load_gen.injected);
          ("delivered", Report.Int result.Load_gen.delivered);
          ("mean_latency", Report.Float result.Load_gen.mean_latency);
          ("p99", Report.Int result.Load_gen.p99_latency);
          ("wall_ms", Report.Float (wall *. 1000.0));
          ("events_per_sec", Report.Float evps);
        ])
      domains_list
  in
  Report.make ~id:"sim_throughput"
    ~title:
      (Printf.sprintf
         "bench sim: sharded engine, %d-node mesh at load %.1f, %d-cycle \
          window" nodes load window)
    ~meta:
      [
        ("nodes", Report.Int nodes);
        ("load", Report.Float load);
        ("window_cycles", Report.Int window);
        ("send_cycles", Report.Int send_cycles);
        ("seed", Report.Int seed);
        ("host_cores", Report.Int (Domain.recommended_domain_count ()));
      ]
    ~columns:
      [
        ("domains", "domains");
        ("events", "events");
        ("windows", "windows");
        ("cross_posts", "x-posts");
        ("delivered", "delivered");
        ("events_per_sec", "events/s");
      ]
    rows

let sim_baseline_rows doc =
  Option.value ~default:[] (json_rows_of_experiment doc ~id:"sim_throughput")

let sim_check report ~baseline_file =
  let doc =
    let ic = open_in baseline_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.parse s with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "sim --check: cannot parse %s: %s\n" baseline_file msg;
        exit 2
  in
  let base_rows = sim_baseline_rows doc in
  Printf.printf
    "\n=== sim determinism gate vs %s (deterministic fields, exact) ===\n"
    baseline_file;
  let failed = ref false in
  List.iter
    (fun row ->
      let domains =
        match List.assoc_opt "domains" row with
        | Some (Report.Int d) -> d
        | _ -> -1
      in
      let base_row =
        List.find_opt
          (fun r -> json_row_num "domains" r = Some (float_of_int domains))
          base_rows
      in
      match base_row with
      | None ->
          failed := true;
          Printf.printf "domains=%d: missing from baseline\n" domains
      | Some base ->
          List.iter
            (fun field ->
              let cur = row_num field row in
              let ref_ = json_row_num field base in
              let ok = cur <> None && cur = ref_ in
              if not ok then failed := true;
              Printf.printf "domains=%d %-14s baseline %12s  current %12s  %s\n"
                domains field
                (match ref_ with Some v -> Printf.sprintf "%.6g" v | None -> "-")
                (match cur with Some v -> Printf.sprintf "%.6g" v | None -> "-")
                (if ok then "ok" else "MISMATCH"))
            sim_deterministic_fields)
    report.Report.rows;
  if !failed then begin
    Printf.printf
      "sim determinism gate FAILED: the sharded engine's results moved. If \
       the change is an intended model change, regenerate BENCH_sim.json \
       (see EXPERIMENTS.md E17).\n";
    exit 1
  end
  else Printf.printf "sim determinism gate passed.\n"

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let run json out quick seed check =
  let reports = Runner.all_reports ~quick ~seed () in
  if json then begin
    let path = Option.value out ~default:"BENCH_udma.json" in
    let doc =
      Report.bench_json
        ~meta:
          [
            ("generator", Report.Str "bench");
            ("quick", Report.Bool quick);
            ("seed", Report.Int seed);
          ]
        reports
    in
    let oc = open_out path in
    output_string oc (Json.to_string ~indent:2 doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s (%d experiments)\n" path (List.length reports)
  end
  else begin
    Printf.printf
      "Reproduction of: Blumrich, Dubnicki, Felten, Li — \"Protected, \
       User-Level DMA for the SHRIMP Network Interface\" (HPCA 1996)\n";
    Printf.printf
      "Every series below corresponds to a table/figure or quantitative \
       claim of the paper; see DESIGN.md section 4 and EXPERIMENTS.md.\n";
    List.iter Report.print reports
  end;
  (match check with
  | Some baseline_file -> check_anchors reports ~baseline_file
  | None -> ());
  (* the wall-clock micro-benchmarks only make sense in the default
     full table mode *)
  if (not json) && (not quick) && check = None then begin
    run_bechamel ();
    Printf.printf "\nDone.\n"
  end

let () =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Write the whole run as one udma-bench/1 JSON document \
                (default BENCH_udma.json) instead of printing tables.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Destination for --json output.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Small deterministic parameter set (what CI uses for the \
                committed BENCH_baseline.json).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for the randomized experiments.")
  in
  let check =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:"Diff the E1/E2/E11/E12/E13/E14/E15 anchors of this run \
                against the baseline document $(docv); exit 1 on >±2% drift.")
  in
  let default_term = Term.(const run $ json $ out $ quick $ seed $ check) in
  let sim_cmd =
    let nodes =
      Arg.(
        value & opt int 256
        & info [ "nodes" ] ~docv:"N"
            ~doc:"Mesh size for the throughput workload (default 256 = 16x16).")
    in
    let load =
      Arg.(
        value & opt float 0.9
        & info [ "load" ] ~docv:"L"
            ~doc:"Offered load as a fraction of per-source capacity.")
    in
    let window =
      Arg.(
        value & opt int 20_000
        & info [ "window" ] ~docv:"CYCLES" ~doc:"Measurement window.")
    in
    let sim_seed =
      Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
    in
    let domains_list =
      Arg.(
        value
        & opt (list int) [ 1; 2 ]
        & info [ "domains" ] ~docv:"N,..."
            ~doc:"Worker-domain counts to run, one row each.")
    in
    let sim_out =
      Arg.(
        value
        & opt (some string) None
        & info [ "out" ] ~docv:"FILE"
            ~doc:"Write the run as a udma-bench/1 JSON document \
                  (default BENCH_sim.json when --json is set).")
    in
    let sim_json =
      Arg.(
        value & flag
        & info [ "json" ] ~doc:"Write JSON instead of printing the table.")
    in
    let sim_check_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "check" ] ~docv:"FILE"
            ~doc:
              "Compare the deterministic engine counters of this run against \
               the baseline document $(docv) EXACTLY (the engine-determinism \
               gate); exit 1 on any mismatch. Wall-clock rates are never \
               gated.")
    in
    let sim_run sim_json sim_out nodes load window sim_seed domains_list
        sim_check_arg =
      let report =
        sim_report ~nodes ~load ~window ~seed:sim_seed ~domains_list
      in
      if sim_json then begin
        let path = Option.value sim_out ~default:"BENCH_sim.json" in
        let doc =
          Report.bench_json
            ~meta:
              [
                ("generator", Report.Str "bench sim");
                ("seed", Report.Int sim_seed);
              ]
            [ report ]
        in
        let oc = open_out path in
        output_string oc (Json.to_string ~indent:2 doc);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
      end
      else Report.print report;
      match sim_check_arg with
      | Some baseline_file -> sim_check report ~baseline_file
      | None -> ()
    in
    Cmd.v
      (Cmd.info "sim"
         ~doc:
           "Raw sharded-engine throughput (events/sec) per domain count; \
            deterministic counters are the BENCH_sim.json anchor set.")
      Term.(
        const sim_run $ sim_json $ sim_out $ nodes $ load $ window $ sim_seed
        $ domains_list $ sim_check_arg)
  in
  let info =
    Cmd.info "bench" ~version:"1.0.0"
      ~doc:"Regenerate the paper's evaluation; emit/check JSON reports."
  in
  exit (Cmd.eval (Cmd.group ~default:default_term info [ sim_cmd ]))
